#include "harness/runner.hh"

#include <cstdio>

#include "workloads/workloads.hh"

namespace direb
{

namespace harness
{

Config
baseConfig(const std::string &mode)
{
    Config c;
    c.set("core.mode", mode);
    return c;
}

SimResult
run(const Program &program, const Config &config, std::uint64_t max_insts)
{
    OooCore core(program, config);
    SimResult r;
    r.core = core.run(max_insts);
    r.stats = core.statGroup().snapshot();
    r.output = core.archState().out;
    r.statsText = core.statGroup().dump();
    return r;
}

SimResult
runWorkload(const std::string &workload, const Config &config,
            unsigned scale, std::uint64_t max_insts)
{
    const Program prog = workloads::build(workload, scale);
    return run(prog, config, max_insts);
}

std::string
goldenCheck(const Program &program, const Config &config,
            std::uint64_t max_insts)
{
    Vm vm(program);
    const StopReason vm_stop = vm.run(max_insts);

    OooCore core(program, config);
    const CoreResult tr = core.run(max_insts);

    char buf[256];
    if (vm_stop != tr.stop) {
        std::snprintf(buf, sizeof(buf),
                      "stop reason mismatch: vm=%d core=%d",
                      static_cast<int>(vm_stop), static_cast<int>(tr.stop));
        return buf;
    }
    if (vm.instCount() != tr.archInsts) {
        std::snprintf(buf, sizeof(buf),
                      "instruction count mismatch: vm=%llu core=%llu",
                      static_cast<unsigned long long>(vm.instCount()),
                      static_cast<unsigned long long>(tr.archInsts));
        return buf;
    }
    if (vm.state().out != core.archState().out) {
        return "program output mismatch: vm='" + vm.state().out +
               "' core='" + core.archState().out + "'";
    }
    for (unsigned r = 0; r < numIntRegs; ++r) {
        if (vm.state().readIntReg(r) != core.archState().readIntReg(r)) {
            std::snprintf(buf, sizeof(buf),
                          "x%u mismatch: vm=%llx core=%llx", r,
                          static_cast<unsigned long long>(
                              vm.state().readIntReg(r)),
                          static_cast<unsigned long long>(
                              core.archState().readIntReg(r)));
            return buf;
        }
    }
    for (unsigned r = 0; r < numFpRegs; ++r) {
        if (vm.state().readFpReg(r) != core.archState().readFpReg(r)) {
            std::snprintf(buf, sizeof(buf), "f%u mismatch", r);
            return buf;
        }
    }
    return "";
}

} // namespace harness

} // namespace direb
