/**
 * @file
 * Reporting for the bench binaries: fixed-width plain-text tables, a title
 * block naming the figure/table being reproduced, geometric-mean helpers
 * (the paper reports cross-benchmark averages), and a small JSON value
 * builder so every bench can emit a machine-readable BENCH_<name>.json
 * alongside its table.
 */

#ifndef DIREB_HARNESS_REPORT_HH
#define DIREB_HARNESS_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace direb
{

namespace harness
{

/** Incremental fixed-width table builder. */
class Table
{
  public:
    /** @param column_names header cells; first column is left-aligned. */
    explicit Table(std::vector<std::string> column_names);

    /** Start a new row. */
    Table &row();
    /** Append a string cell to the current row. */
    Table &cell(const std::string &text);
    /** Append a numeric cell with @p decimals digits. */
    Table &num(double value, int decimals = 3);
    /** Append a percentage cell ("12.3%"). */
    Table &pct(double fraction, int decimals = 1);

    /** Render with column separators and a header rule. */
    std::string render() const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Print a bench banner: experiment id + what the paper's version shows. */
void banner(const std::string &experiment, const std::string &claim);

/** Arithmetic mean of @p values (0 for empty). */
double mean(const std::vector<double> &values);

/**
 * Geometric mean of the positive entries of @p values. Non-positive
 * entries (e.g. zero IPC from a timed-out sweep point) are skipped with a
 * warn() rather than aborting mid-report; 0 if nothing remains.
 */
double geomean(const std::vector<double> &values);

/**
 * Minimal JSON value: null, bool, number, string, object or array.
 * Objects preserve insertion order; numbers print without a fractional
 * part when they were set from an integer; NaN/Inf render as null.
 */
class Json
{
  public:
    Json() = default; //!< null
    Json(bool v) : kind(Kind::Bool), boolean(v) {}
    Json(double v) : kind(Kind::Number), number(v) {}
    Json(int v) : Json(static_cast<std::int64_t>(v)) {}
    Json(unsigned v) : Json(static_cast<std::int64_t>(v)) {}
    Json(std::int64_t v)
        : kind(Kind::Number), number(static_cast<double>(v)), integer(v),
          integral(true)
    {}
    Json(std::uint64_t v);
    Json(const char *v) : kind(Kind::String), text(v) {}
    Json(std::string v) : kind(Kind::String), text(std::move(v)) {}

    static Json object();
    static Json array();

    /**
     * Parse JSON text (the subset dump() emits plus what the standard
     * allows); fatal() on malformed input. Numbers that read back exactly
     * as integers keep the integral print path. Hardened for untrusted
     * input (the HTTP service feeds it raw network bytes): nesting
     * deeper than 64 levels, duplicate object keys and trailing garbage
     * are all rejected with a clear FatalError.
     */
    static Json parse(const std::string &text);

    /** Add/replace an object member (panics unless this is an object). */
    Json &set(const std::string &key, Json value);
    /** Append an array element (panics unless this is an array). */
    Json &push(Json value);

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNull() const { return kind == Kind::Null; }
    std::size_t size() const;

    /** Value accessors (panic on a kind mismatch). @{ */
    double asNumber() const;
    const std::string &asString() const;
    bool asBool() const;
    /** @} */

    /** Object member lookup; nullptr when absent (or not an object). */
    const Json *find(const std::string &key) const;
    /** Array element access (panics out of range / on a non-array). */
    const Json &at(std::size_t i) const;
    /** Object member access by insertion index (panics like at()). @{ */
    const std::string &memberName(std::size_t i) const;
    const Json &memberValue(std::size_t i) const;
    /** @} */

    /**
     * Serialise; @p indent spaces per level (0 = single line).
     * @p full_precision prints doubles with the shortest representation
     * that parses back bit-equal (for the sweep result cache, which
     * restores numbers through parse()); the default 12-significant-digit
     * rendering keeps report output stable and human-readable.
     */
    std::string dump(int indent = 2, bool full_precision = false) const;

  private:
    enum class Kind : std::uint8_t {
        Null, Bool, Number, String, Object, Array
    };

    void write(std::string &out, int indent, int depth,
               bool full_precision) const;

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::int64_t integer = 0;
    bool integral = false;
    std::string text;
    std::vector<std::pair<std::string, Json>> members; //!< object
    std::vector<Json> elements;                        //!< array
};

/** Write @p root to @p path ("-" = stdout); fatal() if unwritable. */
void writeJsonReport(const std::string &path, const Json &root);

} // namespace harness

} // namespace direb

#endif // DIREB_HARNESS_REPORT_HH
