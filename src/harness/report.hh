/**
 * @file
 * Plain-text table rendering for the bench binaries: fixed-width columns,
 * a title block naming the figure/table being reproduced, and geometric-
 * mean helpers (the paper reports cross-benchmark averages).
 */

#ifndef DIREB_HARNESS_REPORT_HH
#define DIREB_HARNESS_REPORT_HH

#include <string>
#include <vector>

namespace direb
{

namespace harness
{

/** Incremental fixed-width table builder. */
class Table
{
  public:
    /** @param column_names header cells; first column is left-aligned. */
    explicit Table(std::vector<std::string> column_names);

    /** Start a new row. */
    Table &row();
    /** Append a string cell to the current row. */
    Table &cell(const std::string &text);
    /** Append a numeric cell with @p decimals digits. */
    Table &num(double value, int decimals = 3);
    /** Append a percentage cell ("12.3%"). */
    Table &pct(double fraction, int decimals = 1);

    /** Render with column separators and a header rule. */
    std::string render() const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Print a bench banner: experiment id + what the paper's version shows. */
void banner(const std::string &experiment, const std::string &claim);

/** Arithmetic mean of @p values (0 for empty). */
double mean(const std::vector<double> &values);

/** Geometric mean of @p values (0 for empty; values must be positive). */
double geomean(const std::vector<double> &values);

} // namespace harness

} // namespace direb

#endif // DIREB_HARNESS_REPORT_HH
