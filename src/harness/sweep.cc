#include "harness/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace harness
{

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::Ok: return "ok";
      case PointStatus::Timeout: return "timeout";
      case PointStatus::Error: return "error";
    }
    return "?";
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("DIREB_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        fatal_if(v < 1, "DIREB_JOBS must be a positive integer, got '%s'",
                 env);
        return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *value = nullptr;
        if (std::strncmp(a, "--jobs=", 7) == 0) {
            value = a + 7;
        } else if ((std::strcmp(a, "--jobs") == 0 ||
                    std::strcmp(a, "-j") == 0) &&
                   i + 1 < argc) {
            value = argv[i + 1];
        }
        if (value) {
            const long v = std::strtol(value, nullptr, 10);
            fatal_if(v < 1, "--jobs wants a positive integer, got '%s'",
                     value);
            return static_cast<unsigned>(v);
        }
    }
    return defaultJobs();
}

Sweep::Sweep(unsigned jobs) : jobCount(jobs > 0 ? jobs : defaultJobs()) {}

std::size_t
Sweep::add(std::string name, std::string workload, Config config,
           unsigned scale, std::uint64_t max_insts)
{
    fatal_if(workload.empty(), "sweep point '%s' has no workload",
             name.c_str());
    Point pt;
    pt.name = std::move(name);
    pt.workload = std::move(workload);
    pt.config = std::move(config);
    pt.scale = scale;
    pt.maxInsts = max_insts;
    points.push_back(std::move(pt));
    return points.size() - 1;
}

std::size_t
Sweep::add(std::string name, Program program, Config config,
           std::uint64_t max_insts)
{
    Point pt;
    pt.name = std::move(name);
    pt.program = std::move(program);
    pt.config = std::move(config);
    pt.maxInsts = max_insts;
    points.push_back(std::move(pt));
    return points.size() - 1;
}

SweepResult
Sweep::runPoint(const Point &point) const
{
    SweepResult res;
    res.name = point.name;
    // One retry: a transient failure (e.g. resource exhaustion) gets a
    // second chance; a deterministic one just fails identically twice.
    for (unsigned attempt = 1; attempt <= 2; ++attempt) {
        res.attempts = attempt;
        try {
            // Build inside the try so unknown workloads / assembler
            // errors are captured per point, and give each attempt a
            // fresh Config copy so the consumed-key audit is per run.
            const Program prog = point.workload.empty()
                ? point.program
                : workloads::build(point.workload, point.scale);
            const Config cfg = point.config;
            res.sim = harness::run(prog, cfg, point.maxInsts);
            switch (res.sim.core.stop) {
              case StopReason::Halted:
                res.status = PointStatus::Ok;
                res.error.clear();
                break;
              case StopReason::InstLimit:
                res.status = PointStatus::Timeout;
                res.error = "instruction/cycle budget exhausted";
                break;
              case StopReason::BadPc:
                res.status = PointStatus::Error;
                res.error = "control left the text segment";
                break;
            }
            return res;
        } catch (const std::exception &e) {
            res.status = PointStatus::Error;
            res.error = e.what();
        }
    }
    return res;
}

std::vector<SweepResult>
Sweep::run() const
{
    std::vector<SweepResult> results(points.size());
    if (points.empty())
        return results;

    // Work-stealing by atomic index; slot i of results belongs to point
    // i alone, so workers never contend on the output vector.
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                return;
            results[i] = runPoint(points[i]);
        }
    };

    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(jobCount, points.size()));
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }
    return results;
}

const SimResult &
requireOk(const SweepResult &result)
{
    fatal_if(!result.ok(), "sweep point '%s' %s: %s", result.name.c_str(),
             pointStatusName(result.status), result.error.c_str());
    return result.sim;
}

Json
resultJson(const SweepResult &result)
{
    Json j = Json::object();
    j.set("name", result.name);
    j.set("status", pointStatusName(result.status));
    if (!result.error.empty())
        j.set("error", result.error);
    if (result.attempts > 1)
        j.set("attempts", result.attempts);
    j.set("cycles", result.sim.core.cycles);
    j.set("arch_insts", result.sim.core.archInsts);
    j.set("ipc", result.sim.core.ipc);
    return j;
}

} // namespace harness

} // namespace direb
