#include "harness/sweep.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace harness
{

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::Ok: return "ok";
      case PointStatus::Timeout: return "timeout";
      case PointStatus::Error: return "error";
      case PointStatus::Cancelled: return "cancelled";
    }
    return "?";
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("DIREB_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        fatal_if(v < 1, "DIREB_JOBS must be a positive integer, got '%s'",
                 env);
        return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *value = nullptr;
        if (std::strncmp(a, "--jobs=", 7) == 0) {
            value = a + 7;
        } else if ((std::strcmp(a, "--jobs") == 0 ||
                    std::strcmp(a, "-j") == 0) &&
                   i + 1 < argc) {
            value = argv[i + 1];
        }
        if (value) {
            const long v = std::strtol(value, nullptr, 10);
            fatal_if(v < 1, "--jobs wants a positive integer, got '%s'",
                     value);
            return static_cast<unsigned>(v);
        }
    }
    return defaultJobs();
}

/**
 * Content address of one sweep point: FNV-1a 64 over the program image
 * (text words, data bytes, entry point), the instruction budget and
 * every explicit config override. The cache directory itself
 * (sweep.cache) is excluded so relocating the cache does not invalidate
 * it. The point's display name is deliberately not hashed: two points
 * running the same simulation share one entry.
 */
std::uint64_t
pointCacheKey(const Program &prog, const Config &cfg,
              std::uint64_t max_insts)
{
    std::uint64_t h = 1469598103934665603ULL; // FNV offset basis
    const auto feed = [&h](const void *data, std::size_t n) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ULL; // FNV prime
        }
    };
    const auto feedU64 = [&feed](std::uint64_t v) {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        feed(b, sizeof(b));
    };

    for (const std::uint32_t w : prog.text)
        feedU64(w);
    if (!prog.data.empty())
        feed(prog.data.data(), prog.data.size());
    feedU64(prog.entry);
    feedU64(max_insts);
    for (const auto &[key, value] : cfg.entries()) {
        // Directory locations are excluded so relocating a cache does
        // not invalidate it: sweep.cache (the result cache itself) and
        // sweep.warmstart_dir (where warm-start checkpoints live).
        // sweep.warmstart — the prefix length — IS hashed: a
        // warm-started point has different timing than a straight run
        // and must not share its cache entry.
        if (key == "sweep.cache" || key == "sweep.warmstart_dir")
            continue;
        feed(key.data(), key.size());
        feed("=", 1);
        feed(value.data(), value.size());
        feed("\n", 1);
    }
    return h;
}

std::string
pointCacheKeyHex(const Program &prog, const Config &cfg,
                 std::uint64_t max_insts)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      pointCacheKey(prog, cfg, max_insts)));
    return buf;
}

Json
sweepCacheEntryJson(const SweepResult &res)
{
    Json j = Json::object();
    j.set("version", sweepCacheVersion);
    j.set("name", res.name);
    j.set("status", pointStatusName(res.status));
    if (!res.error.empty())
        j.set("error", res.error);
    j.set("attempts", res.attempts);
    if (res.sim.warmstartInsts)
        j.set("warmstart_insts", res.sim.warmstartInsts);
    Json core = Json::object();
    core.set("stop", static_cast<int>(res.sim.core.stop));
    core.set("cycles", res.sim.core.cycles);
    core.set("arch_insts", res.sim.core.archInsts);
    core.set("ruu_entries", res.sim.core.ruuEntriesCommitted);
    core.set("ipc", res.sim.core.ipc);
    j.set("core", std::move(core));
    if (!res.sim.cores.empty()) {
        Json cores = Json::array();
        for (const CoreResult &cr : res.sim.cores) {
            cores.push(Json::object()
                           .set("stop", static_cast<int>(cr.stop))
                           .set("cycles", cr.cycles)
                           .set("arch_insts", cr.archInsts)
                           .set("ruu_entries", cr.ruuEntriesCommitted)
                           .set("ipc", cr.ipc));
        }
        j.set("cores", std::move(cores));
    }
    Json stats = Json::object();
    for (const auto &[name, value] : res.sim.stats)
        stats.set(name, value);
    j.set("stats", std::move(stats));
    j.set("output", res.sim.output);
    j.set("stats_text", res.sim.statsText);
    return j;
}

std::string
renderSweepCacheEntry(const SweepResult &res)
{
    // Full precision: the restored stats/ipc doubles must compare
    // bit-equal to a live simulation of the same point — and the store
    // relies on parse + re-render being byte-identical.
    return sweepCacheEntryJson(res).dump(2, /*full_precision=*/true) +
           "\n";
}

bool
parseSweepCacheEntry(const std::string &text, SweepResult &res)
{
    try {
        const Json j = Json::parse(text);
        if (!j.isObject())
            return false;
        const Json *version = j.find("version");
        if (!version || !version->isNumber() ||
            version->asNumber() !=
                static_cast<double>(sweepCacheVersion)) {
            return false;
        }
        const Json *name = j.find("name");
        const Json *status = j.find("status");
        const Json *attempts = j.find("attempts");
        const Json *core = j.find("core");
        const Json *stats = j.find("stats");
        const Json *output = j.find("output");
        const Json *stats_text = j.find("stats_text");
        if (!name || !name->isString() || !status ||
            !status->isString() || !attempts || !attempts->isNumber() ||
            !core || !core->isObject() || !stats || !stats->isObject() ||
            !output || !output->isString() || !stats_text ||
            !stats_text->isString()) {
            return false;
        }
        if (status->asString() == "ok")
            res.status = PointStatus::Ok;
        else if (status->asString() == "timeout")
            res.status = PointStatus::Timeout;
        else
            return false;
        res.name = name->asString();
        const Json *error = j.find("error");
        res.error = error && error->isString() ? error->asString()
                                               : std::string();
        res.attempts = static_cast<unsigned>(attempts->asNumber());
        const Json *warm = j.find("warmstart_insts");
        if (warm && !warm->isNumber())
            return false;
        res.sim.warmstartInsts = warm
            ? static_cast<std::uint64_t>(warm->asNumber())
            : 0;

        // fatal() (not panic()) on malformed leaves: it throws, landing
        // in the catch below, and the entry is treated as a miss.
        const auto coreNum = [core](const char *key) {
            const Json *v = core->find(key);
            fatal_if(!v || !v->isNumber(), "cache: bad core.%s", key);
            return v->asNumber();
        };
        res.sim.core.stop =
            static_cast<StopReason>(static_cast<int>(coreNum("stop")));
        res.sim.core.cycles = static_cast<Cycle>(coreNum("cycles"));
        res.sim.core.archInsts =
            static_cast<std::uint64_t>(coreNum("arch_insts"));
        res.sim.core.ruuEntriesCommitted =
            static_cast<std::uint64_t>(coreNum("ruu_entries"));
        res.sim.core.ipc = coreNum("ipc");

        // Per-core results of a CMP point (absent on single-core
        // points, meaning "none").
        res.sim.cores.clear();
        if (const Json *cores = j.find("cores"); cores && cores->isArray()) {
            for (std::size_t i = 0; i < cores->size(); ++i) {
                const Json &cj = cores->at(i);
                fatal_if(!cj.isObject(), "cache: bad cores[%zu]", i);
                const auto num = [&cj, i](const char *key) {
                    const Json *v = cj.find(key);
                    fatal_if(!v || !v->isNumber(),
                             "cache: bad cores[%zu].%s", i, key);
                    return v->asNumber();
                };
                CoreResult cr;
                cr.stop = static_cast<StopReason>(
                    static_cast<int>(num("stop")));
                cr.cycles = static_cast<Cycle>(num("cycles"));
                cr.archInsts =
                    static_cast<std::uint64_t>(num("arch_insts"));
                cr.ruuEntriesCommitted =
                    static_cast<std::uint64_t>(num("ruu_entries"));
                cr.ipc = num("ipc");
                res.sim.cores.push_back(cr);
            }
        }

        res.sim.stats.clear();
        for (std::size_t i = 0; i < stats->size(); ++i) {
            const Json &v = stats->memberValue(i);
            fatal_if(!v.isNumber(), "cache: non-numeric stat '%s'",
                     stats->memberName(i).c_str());
            res.sim.stats[stats->memberName(i)] = v.asNumber();
        }
        res.sim.output = output->asString();
        res.sim.statsText = stats_text->asString();
        return true;
    } catch (const std::exception &) {
        return false; // corrupt/foreign file: treat as a miss
    }
}

namespace
{

/**
 * Restore a cached point result; false when the file is absent,
 * unparsable or from an incompatible cache version (the caller then
 * simply re-simulates). The enqueued point name is kept: two points
 * running the same simulation share one entry, and the entry stores
 * whichever name cached it first.
 */
bool
loadCachedResult(const std::string &path, SweepResult &res)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream body;
    body << in.rdbuf();
    const std::string keep_name = res.name;
    if (!parseSweepCacheEntry(body.str(), res))
        return false;
    res.name = keep_name;
    return true;
}

/**
 * Persist one Ok/Timeout result. Failures only warn: the cache is an
 * accelerator, never a correctness dependency.
 */
void
storeCachedResult(const std::string &path, const SweepResult &res)
{
    try {
        const std::filesystem::path target(path);
        std::filesystem::create_directories(target.parent_path());
        std::ostringstream tmp_name;
        tmp_name << path << ".tmp." << std::this_thread::get_id();
        const std::string tmp = tmp_name.str();
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out) {
                warn("sweep cache: cannot write %s", tmp.c_str());
                return;
            }
            out << renderSweepCacheEntry(res);
        }
        // rename() is atomic within a filesystem, so concurrent workers
        // caching the same key can only ever publish a complete file.
        std::filesystem::rename(tmp, target);
    } catch (const std::exception &e) {
        warn("sweep cache: failed to store %s: %s", path.c_str(),
             e.what());
    }
}

} // namespace

Sweep::Sweep(unsigned jobs) : jobCount(jobs > 0 ? jobs : defaultJobs()) {}

std::size_t
Sweep::add(std::string name, std::string workload, Config config,
           unsigned scale, std::uint64_t max_insts)
{
    fatal_if(workload.empty(), "sweep point '%s' has no workload",
             name.c_str());
    Point pt;
    pt.name = std::move(name);
    pt.workload = std::move(workload);
    pt.config = std::move(config);
    pt.scale = scale;
    pt.maxInsts = max_insts;
    points.push_back(std::move(pt));
    return points.size() - 1;
}

std::size_t
Sweep::add(std::string name, Program program, Config config,
           std::uint64_t max_insts)
{
    Point pt;
    pt.name = std::move(name);
    pt.program = std::move(program);
    pt.config = std::move(config);
    pt.maxInsts = max_insts;
    points.push_back(std::move(pt));
    return points.size() - 1;
}

SweepResult
Sweep::runPoint(const Point &point) const
{
    SweepResult res;
    res.name = point.name;
    // One retry: a transient failure (e.g. resource exhaustion) gets a
    // second chance; a deterministic one just fails identically twice.
    for (unsigned attempt = 1; attempt <= 2; ++attempt) {
        res.attempts = attempt;
        try {
            // Build inside the try so unknown workloads / assembler
            // errors are captured per point, and give each attempt a
            // fresh Config copy so the consumed-key audit is per run.
            const Program prog = point.workload.empty()
                ? point.program
                : workloads::build(point.workload, point.scale);
            const Config cfg = point.config;

            // Content-addressed result cache, opt-in per point. On a
            // hit the whole simulation is skipped; note the consumed-key
            // audit then only ran on the original (cold) execution.
            const std::string cache_dir = cfg.getString(
                "sweep.cache", "",
                "directory for the content-addressed sweep result cache "
                "(empty = caching off)");
            std::string cache_path;
            if (!cache_dir.empty()) {
                cache_path = cache_dir + "/" +
                             pointCacheKeyHex(prog, cfg, point.maxInsts) +
                             ".json";
                if (attempt == 1 && loadCachedResult(cache_path, res)) {
                    res.fromCache = true;
                    return res;
                }
            }

            // CMP points (cmp.cores > 1) build a fresh Chip per run and
            // bypass the single-core pool; the cache key above already
            // covers cmp.* since it hashes every config entry.
            if (pooling && cmpCores(cfg) <= 1) {
                CorePool &pool = sharedPool ? *sharedPool : *corePool;
                auto core = pool.acquire(prog, cfg);
                res.sim = runWithCore(*core, cfg, point.maxInsts);
                pool.release(std::move(core));
            } else {
                res.sim = harness::run(prog, cfg, point.maxInsts);
            }
            switch (res.sim.core.stop) {
              case StopReason::Halted:
                res.status = PointStatus::Ok;
                res.error.clear();
                break;
              case StopReason::InstLimit:
                res.status = PointStatus::Timeout;
                res.error = "instruction/cycle budget exhausted";
                break;
              case StopReason::BadPc:
                res.status = PointStatus::Error;
                res.error = "control left the text segment";
                break;
            }
            // Ok and Timeout are deterministic outcomes worth reusing;
            // Error points always re-run so a fixed config or workload
            // isn't masked by a stale failure.
            if (!cache_path.empty() && res.status != PointStatus::Error)
                storeCachedResult(cache_path, res);
            return res;
        } catch (const std::exception &e) {
            res.status = PointStatus::Error;
            res.error = e.what();
        }
    }
    return res;
}

std::vector<SweepResult>
Sweep::run(const std::atomic<bool> *cancel,
           const PointCallback &on_point) const
{
    std::vector<SweepResult> results(points.size());
    if (points.empty())
        return results;

    // Ordered streaming: point i is reported once points 0..i are all
    // finished, by whichever worker closed that prefix. Everything here
    // is guarded by emitMtx, so callbacks are serialized and arrive in
    // enqueue order no matter how completion interleaves.
    std::mutex emitMtx;
    std::vector<bool> finished(points.size(), false);
    std::size_t nextEmit = 0;
    std::exception_ptr emitError;
    const auto emit = [&](std::size_t i) {
        if (!on_point)
            return;
        std::lock_guard<std::mutex> lock(emitMtx);
        finished[i] = true;
        if (emitError)
            return; // an earlier callback threw; stop reporting
        try {
            while (nextEmit < points.size() && finished[nextEmit]) {
                on_point(results[nextEmit], nextEmit);
                ++nextEmit;
            }
        } catch (...) {
            // Never let a consumer exception escape into a worker
            // thread (that would terminate the process) — park it and
            // rethrow from run() once the workers are joined.
            emitError = std::current_exception();
        }
    };

    // Work-stealing by atomic index; slot i of results belongs to point
    // i alone, so workers never contend on the output vector.
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                return;
            // Cancellation is point-granular: a point already running
            // completes (its result stays deterministic), everything
            // still queued is marked Cancelled without simulating, so
            // a server drain never runs the rest of the matrix.
            if (cancel && cancel->load(std::memory_order_relaxed)) {
                results[i].name = points[i].name;
                results[i].status = PointStatus::Cancelled;
                results[i].error = "sweep cancelled before this point ran";
            } else {
                results[i] = runPoint(points[i]);
            }
            emit(i);
        }
    };

    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(jobCount, points.size()));
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }
    if (emitError)
        std::rethrow_exception(emitError);
    return results;
}

const SimResult &
requireOk(const SweepResult &result)
{
    fatal_if(!result.ok(), "sweep point '%s' %s: %s", result.name.c_str(),
             pointStatusName(result.status), result.error.c_str());
    return result.sim;
}

Json
resultJson(const SweepResult &result)
{
    Json j = Json::object();
    j.set("name", result.name);
    j.set("status", pointStatusName(result.status));
    if (!result.error.empty())
        j.set("error", result.error);
    if (result.attempts > 1)
        j.set("attempts", result.attempts);
    if (result.fromCache)
        j.set("cached", true);
    j.set("cycles", result.sim.core.cycles);
    j.set("arch_insts", result.sim.core.archInsts);
    j.set("ipc", result.sim.core.ipc);
    return j;
}

} // namespace harness

} // namespace direb
