/**
 * @file
 * Figure 8 (reconstructed): IRB behaviour breakdown on the duplicate
 * stream — PC hit rate, reuse-test pass rate, lookups dropped for lack of
 * ports, and the resulting fraction of duplicate entries that bypassed
 * the ALUs. This is the mechanism behind Figure 7.
 *
 * Runs on the parallel sweep engine (--jobs N / DIREB_JOBS); emits
 * BENCH_fig8_irb_hitrate.json.
 */

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Figure 8 — IRB hit-rate breakdown (duplicate stream)",
        "1024-entry direct-mapped IRB hit rates are 'fairly good' "
        "[29,35]; reuse varies widely per application and drives the "
        "per-app recovery of Figure 7");

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const auto &w : workloads::list())
        sweep.add(w.name, w.name, harness::baseConfig("die-irb"));
    const auto results = sweep.run();

    Table t({"workload", "lookups", "port drops", "PC hit", "reuse hit",
             "bypassed/dup", "upd drops"});

    std::vector<double> reuse_rates;
    Json rows = Json::array();

    std::size_t idx = 0;
    for (const auto &w : workloads::list()) {
        const harness::SimResult &r = harness::requireOk(results[idx++]);
        const double lookups = r.stat("core.irb.lookups");
        const double drops = r.stat("core.irb.lookup_port_drops");
        const double pc_hits = r.stat("core.irb.pc_hits");
        const double tests = r.stat("core.irb.reuse_hits") +
                             r.stat("core.irb.reuse_misses");
        const double reuse =
            tests > 0 ? r.stat("core.irb.reuse_hits") / tests : 0.0;
        const double dups = r.stat("core.dispatched") / 2.0;
        const double bypassed =
            r.stat("core.bypassed_alu") / std::max(1.0, dups);
        reuse_rates.push_back(reuse);

        t.row()
            .cell(w.name)
            .num(lookups, 0)
            .pct(drops / std::max(1.0, lookups), 1)
            .pct(pc_hits / std::max(1.0, lookups - drops), 1)
            .pct(reuse, 1)
            .pct(bypassed, 1)
            .num(r.stat("core.irb.update_port_drops"), 0);

        rows.push(Json::object()
                      .set("workload", w.name)
                      .set("lookups", lookups)
                      .set("lookup_port_drops", drops)
                      .set("pc_hits", pc_hits)
                      .set("reuse_rate", reuse)
                      .set("bypassed_per_dup", bypassed)
                      .set("update_port_drops",
                           r.stat("core.irb.update_port_drops")));
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("average reuse-test pass rate: %.1f%%\n",
                100.0 * harness::mean(reuse_rates));

    Json root = Json::object();
    root.set("bench", "fig8_irb_hitrate");
    root.set("jobs", sweep.jobs());
    root.set("workloads", std::move(rows));
    root.set("avg_reuse_rate", harness::mean(reuse_rates));
    harness::writeJsonReport("BENCH_fig8_irb_hitrate.json", root);
    std::printf("wrote BENCH_fig8_irb_hitrate.json\n");
    return 0;
}
