/**
 * @file
 * Figure 8 (reconstructed): IRB behaviour breakdown on the duplicate
 * stream — PC hit rate, reuse-test pass rate, lookups dropped for lack of
 * ports, and the resulting fraction of duplicate entries that bypassed
 * the ALUs. This is the mechanism behind Figure 7.
 */

#include <cstdio>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Table;

int
main()
{
    setQuiet(true);
    harness::banner(
        "Figure 8 — IRB hit-rate breakdown (duplicate stream)",
        "1024-entry direct-mapped IRB hit rates are 'fairly good' "
        "[29,35]; reuse varies widely per application and drives the "
        "per-app recovery of Figure 7");

    Table t({"workload", "lookups", "port drops", "PC hit", "reuse hit",
             "bypassed/dup", "upd drops"});

    std::vector<double> reuse_rates;
    for (const auto &w : workloads::list()) {
        const auto r =
            harness::runWorkload(w.name, harness::baseConfig("die-irb"));
        const double lookups = r.stat("core.irb.lookups");
        const double drops = r.stat("core.irb.lookup_port_drops");
        const double pc_hits = r.stat("core.irb.pc_hits");
        const double tests = r.stat("core.irb.reuse_hits") +
                             r.stat("core.irb.reuse_misses");
        const double reuse =
            tests > 0 ? r.stat("core.irb.reuse_hits") / tests : 0.0;
        const double dups = r.stat("core.dispatched") / 2.0;
        reuse_rates.push_back(reuse);

        t.row()
            .cell(w.name)
            .num(lookups, 0)
            .pct(drops / std::max(1.0, lookups), 1)
            .pct(pc_hits / std::max(1.0, lookups - drops), 1)
            .pct(reuse, 1)
            .pct(r.stat("core.bypassed_alu") / std::max(1.0, dups), 1)
            .num(r.stat("core.irb.update_port_drops"), 0);
        std::fflush(stdout);
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("average reuse-test pass rate: %.1f%%\n",
                100.0 * harness::mean(reuse_rates));
    return 0;
}
