/**
 * @file
 * Table 1 (reconstructed): the simulated machine configuration — the
 * paper's §2.2/§4 base SIE/DIE machine and the DIE-IRB additions. Values
 * are read back from live component defaults so the table can never
 * drift from the code.
 */

#include <cstdio>

#include "branch/predictor.hh"
#include "common/logging.hh"
#include "cpu/ooo_core.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace direb;
using harness::Json;
using harness::Table;

int
main()
{
    setQuiet(true);
    harness::banner("Table 1 — simulated machine configuration",
                    "base machine of the DIE proposal [24] (SimpleScalar "
                    "RUU model) + the paper's 1024-entry direct-mapped "
                    "IRB with 4R/2W/2RW ports and 3-stage pipelined "
                    "access");

    Config cfg = harness::baseConfig("die-irb");
    const CoreParams p = CoreParams::fromConfig(cfg);
    FuPool fus(cfg);
    mem::MemorySystem mem(cfg, 1);
    Irb irb(cfg);

    Table t({"parameter", "value"});
    Json params = Json::object();
    const auto row = [&](const std::string &k, const std::string &v) {
        t.row().cell(k).cell(v);
        params.set(k, v);
    };
    const auto num = [](std::uint64_t v) { return std::to_string(v); };

    row("fetch/decode/issue/commit width",
        num(p.fetchWidth) + "/" + num(p.decodeWidth) + "/" +
            num(p.issueWidth) + "/" + num(p.commitWidth));
    row("RUU (unified ROB+issue window)", num(p.ruuSize) + " entries");
    row("load/store queue", num(p.lsqSize) + " entries");
    row("fetch queue", num(p.ifqSize) + " entries");
    row("squash redirect penalty", num(p.redirectPenalty) + " cycles");

    row("integer ALUs", num(fus.unitCount(OpClass::IntAlu)));
    row("integer mult/div units", num(fus.unitCount(OpClass::IntMul)));
    row("FP adders", num(fus.unitCount(OpClass::FpAdd)));
    row("FP mult/div/sqrt units", num(fus.unitCount(OpClass::FpMul)));
    row("memory ports", "2");
    row("intALU / intMUL / intDIV latency",
        num(fus.timing(OpClass::IntAlu).opLatency) + " / " +
            num(fus.timing(OpClass::IntMul).opLatency) + " / " +
            num(fus.timing(OpClass::IntDiv).opLatency));
    row("fpADD / fpMUL / fpDIV / fpSQRT latency",
        num(fus.timing(OpClass::FpAdd).opLatency) + " / " +
            num(fus.timing(OpClass::FpMul).opLatency) + " / " +
            num(fus.timing(OpClass::FpDiv).opLatency) + " / " +
            num(fus.timing(OpClass::FpSqrt).opLatency));

    const auto cache_row = [&](const char *name, Cache &c) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%zuKB, %u-way, %uB blocks, %llu"
                      "-cycle hit", c.params().sizeBytes / 1024,
                      c.params().assoc, c.params().blockBytes,
                      static_cast<unsigned long long>(
                          c.params().hitLatency));
        row(name, buf);
    };
    cache_row("L1 I-cache", mem.l1i(0));
    cache_row("L1 D-cache", mem.l1d(0));
    cache_row("L2 unified", mem.l2());
    row("memory latency", "100 cycles");

    Config bp_probe = harness::baseConfig("sie");
    row("branch predictor",
        bp_probe.getString("bp.kind", "tournament") +
            " (2K bimodal + 4K gshare/12-bit hist + 4K chooser)");
    row("BTB / RAS", "2048 entries / 16 entries");

    row("IRB entries", num(irb.size()) + " (direct-mapped)");
    row("IRB ports", "4 read, 2 write, 2 read/write");
    row("IRB pipelined access", num(irb.pipelineDepth()) + " stages");
    row("IRB CTR hysteresis", "2-bit saturating counter");

    std::printf("%s\n", t.render().c_str());

    Json root = Json::object();
    root.set("bench", "table1_config");
    root.set("parameters", std::move(params));
    harness::writeJsonReport("BENCH_table1_config.json", root);
    std::printf("wrote BENCH_table1_config.json\n");
    return 0;
}
