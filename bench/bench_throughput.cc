/**
 * @file
 * Simulator throughput, two angles:
 *
 *  1. Host-side cycles/sec and retired-instr/sec for the reference scan
 *     scheduler vs the incremental ready_list scheduler, per kernel, on
 *     the full DIE-IRB machine. The two schedulers are cycle-for-cycle
 *     identical (test_scheduler_diff proves it), so this measures only
 *     how fast the simulator itself runs. Acceptance: >= 1.2x geomean.
 *     (The gate was 2x against the AoS RuuEntry layout; the SoA
 *     PipelineState sped the full-RUU scan up by ~2x — mask tests over
 *     packed flag words instead of ~200-byte record hops — so the
 *     *relative* gap narrowed while both backends got faster. Absolute
 *     regression protection is the per-workload floor check in CI, not
 *     this ratio.)
 *
 *  2. End-to-end wall clock for the Figure-7 matrix (12 kernels x
 *     {sie, die, die-irb}) through harness::Sweep at jobs=1 vs parallel
 *     jobs (--jobs / DIREB_JOBS, default min(4, hw)). The sweep results
 *     must be bit-identical; the speedup should scale with cores and is
 *     gated at >= 2x when at least 4 hardware threads are available.
 *
 *  3. Construction overhead: the same serial matrix with core pooling
 *     off (one OooCore built per point) vs on (cores rebound via
 *     reset()). Results must be bit-identical; pooling must at least
 *     roughly match fresh construction (>= 0.9x, simulation dominates).
 *
 * Emits BENCH_throughput.json (path overridable as argv[1]).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

namespace
{

struct Measured
{
    double seconds = 0;      //!< host seconds per simulation
    double cycles = 0;       //!< simulated cycles per run
    double archInsts = 0;    //!< retired architectural instructions per run
    double cyclesPerSec = 0; //!< simulated cycles per host second
    double instsPerSec = 0;  //!< retired instructions per host second
};

Measured
timeScheduler(const std::string &kernel, const std::string &scheduler)
{
    Config cfg = harness::baseConfig("die-irb");
    cfg.set("core.scheduler", scheduler);

    // One untimed warm-up run to fault in code and host caches.
    const harness::SimResult warm = harness::runWorkload(kernel, cfg);

    Measured m;
    m.cycles = static_cast<double>(warm.core.cycles);
    m.archInsts = static_cast<double>(warm.core.archInsts);

    // Repeat until enough host time has accumulated for a stable rate.
    using clock = std::chrono::steady_clock;
    double total = 0;
    int reps = 0;
    while (total < 0.25 || reps < 3) {
        const auto t0 = clock::now();
        const harness::SimResult r = harness::runWorkload(kernel, cfg);
        const auto t1 = clock::now();
        total += std::chrono::duration<double>(t1 - t0).count();
        ++reps;
        fatal_if(r.core.cycles != warm.core.cycles,
                 "non-deterministic run for %s/%s", kernel.c_str(),
                 scheduler.c_str());
    }
    m.seconds = total / reps;
    m.cyclesPerSec = m.cycles / m.seconds;
    m.instsPerSec = m.archInsts / m.seconds;
    return m;
}

/** The Figure-7 matrix as a sweep with the given worker count. */
harness::Sweep
figure7Sweep(unsigned jobs)
{
    harness::Sweep sweep(jobs);
    for (const auto &w : workloads::list()) {
        for (const char *mode : {"sie", "die", "die-irb"}) {
            sweep.add(w.name + "/" + mode, w.name,
                      harness::baseConfig(mode));
        }
    }
    return sweep;
}

double
timedRun(const harness::Sweep &sweep,
         std::vector<harness::SweepResult> &out)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    out = sweep.run();
    const auto t1 = clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Trace-overhead gate: compare this build's ready_list cycles/sec against
 * the rates recorded in a reference BENCH_throughput.json from the same
 * machine (typically a pre-trace-subsystem build). With tracing disabled
 * (the default — every hook is one null-pointer test) the geomean ratio
 * must stay above 0.98, i.e. the hooks may cost < 2%. Comparing against
 * a file from a different host is meaningless, which is why this only
 * runs when --baseline is passed explicitly.
 *
 * A baseline whose workload names match nothing in this run would yield
 * the geomean of an empty set — a 0.0 that reads like a catastrophic
 * regression in one context and a vacuous pass in another — so zero
 * matches is a hard error instead.
 *
 * @return geomean(current/baseline) over the matched workloads.
 */
double
baselineRatio(const std::string &path,
              const std::map<std::string, double> &current_rates)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open baseline '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    const Json base = Json::parse(ss.str());

    const Json *rows = base.find("workloads");
    fatal_if(rows == nullptr || !rows->isArray(),
             "baseline '%s' has no workloads array", path.c_str());

    std::vector<double> ratios;
    for (std::size_t i = 0; i < rows->size(); ++i) {
        const Json &row = rows->at(i);
        const Json *name = row.find("workload");
        const Json *list = row.find("ready_list");
        const Json *rate = list ? list->find("cycles_per_sec") : nullptr;
        fatal_if(!name || !name->isString() || !rate || !rate->isNumber(),
                 "baseline '%s' row %zu is malformed", path.c_str(), i);
        const auto cur = current_rates.find(name->asString());
        if (cur == current_rates.end()) {
            warn("baseline workload '%s' not measured in this run",
                 name->asString().c_str());
            continue;
        }
        ratios.push_back(cur->second / rate->asNumber());
    }
    fatal_if(ratios.empty(),
             "baseline '%s': no workload matches this run's measurements "
             "(wrong file, or workload set renamed?)",
             path.c_str());
    return harness::geomean(ratios);
}

} // namespace

namespace
{

int
run(int argc, char **argv)
{
    setQuiet(true);
    std::string json_path = "BENCH_throughput.json";
    if (argc > 1 && argv[1][0] != '-')
        json_path = argv[1];
    std::string baseline_path;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--baseline") == 0)
            baseline_path = argv[i + 1];

    harness::banner(
        "Simulator throughput — scan vs ready_list scheduler",
        "both schedulers are bit-identical in simulated behaviour; the "
        "ready_list hot loop visits only actionable RUU entries and must "
        "be >= 1.2x faster in simulated cycles per host second (the SoA "
        "RUU narrowed the gap by speeding the scan itself up ~2x)");

    Table t({"workload", "sim cycles", "scan Mcyc/s", "list Mcyc/s",
             "scan Minst/s", "list Minst/s", "speedup"});

    std::vector<double> speedups;
    std::map<std::string, double> list_rates;
    Json sched_rows = Json::array();
    for (const auto &w : workloads::list()) {
        const Measured scan = timeScheduler(w.name, "scan");
        const Measured list = timeScheduler(w.name, "ready_list");
        fatal_if(scan.cycles != list.cycles,
                 "scheduler divergence on %s: %f vs %f cycles",
                 w.name.c_str(), scan.cycles, list.cycles);

        const double speedup = list.cyclesPerSec / scan.cyclesPerSec;
        speedups.push_back(speedup);
        list_rates[w.name] = list.cyclesPerSec;

        t.row()
            .cell(w.name)
            .num(scan.cycles, 0)
            .num(scan.cyclesPerSec / 1e6, 2)
            .num(list.cyclesPerSec / 1e6, 2)
            .num(scan.instsPerSec / 1e6, 2)
            .num(list.instsPerSec / 1e6, 2)
            .num(speedup, 2);
        std::fflush(stdout);

        sched_rows.push(
            Json::object()
                .set("workload", w.name)
                .set("sim_cycles", scan.cycles)
                .set("arch_insts", scan.archInsts)
                .set("scan",
                     Json::object()
                         .set("cycles_per_sec", scan.cyclesPerSec)
                         .set("insts_per_sec", scan.instsPerSec))
                .set("ready_list",
                     Json::object()
                         .set("cycles_per_sec", list.cyclesPerSec)
                         .set("insts_per_sec", list.instsPerSec))
                .set("speedup", speedup));
    }

    const double geo = harness::geomean(speedups);
    std::printf("%s\n", t.render().c_str());
    std::printf("geomean ready_list speedup: %.2fx (acceptance: >= 1.2x)\n",
                geo);

    // ---- trace-hook overhead vs a recorded same-host baseline ----
    double base_ratio = 0;
    if (!baseline_path.empty()) {
        base_ratio = baselineRatio(baseline_path, list_rates);
        std::printf("geomean cycles/sec vs %s: %.4fx "
                    "(acceptance: >= 0.98, i.e. trace hooks cost < 2%%)\n",
                    baseline_path.c_str(), base_ratio);
    }

    // ---- parallel sweep engine: end-to-end Figure-7 matrix wall clock ----
    const unsigned hw = std::thread::hardware_concurrency();
    unsigned par_jobs = harness::jobsFromArgs(argc, argv);
    bool jobs_explicit = false;
    for (int i = 1; i < argc; ++i)
        jobs_explicit |= std::strncmp(argv[i], "--jobs", 6) == 0 ||
                         std::strcmp(argv[i], "-j") == 0;
    if (!jobs_explicit && std::getenv("DIREB_JOBS") == nullptr)
        par_jobs = std::min(4u, hw > 0 ? hw : 1u);

    harness::banner(
        "Sweep engine — serial vs parallel Figure-7 matrix",
        "the 36-point sweep is embarrassingly parallel; results are "
        "bit-identical in any order, so wall clock should drop roughly "
        "linearly in cores (>= 2x at jobs=4 on a 4-way host)");

    std::vector<harness::SweepResult> serial, parallel;
    const double serial_s = timedRun(figure7Sweep(1), serial);
    const double par_s = timedRun(figure7Sweep(par_jobs), parallel);

    fatal_if(serial.size() != parallel.size(), "sweep size mismatch");
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const harness::SimResult &a = harness::requireOk(serial[i]);
        const harness::SimResult &b = harness::requireOk(parallel[i]);
        fatal_if(serial[i].name != parallel[i].name,
                 "sweep order diverged at %zu", i);
        fatal_if(a.core.cycles != b.core.cycles ||
                     a.core.archInsts != b.core.archInsts ||
                     a.stats != b.stats,
                 "parallel sweep diverged on %s", serial[i].name.c_str());
    }

    const double sweep_speedup = serial_s / par_s;
    std::printf("points            : %zu (12 kernels x 3 modes)\n",
                serial.size());
    std::printf("serial  (jobs=1)  : %.2fs\n", serial_s);
    std::printf("parallel (jobs=%u): %.2fs\n", par_jobs, par_s);
    std::printf("sweep speedup     : %.2fx (hardware threads: %u)\n",
                sweep_speedup, hw);
    std::printf("results bit-identical: yes (cycles, insts, all stats)\n");

    // ---- core pooling: per-point construction vs reset() reuse ----
    harness::banner(
        "Core pool — fresh construction vs reset() reuse (jobs=1)",
        "OooCore::reset() rebinds an existing core bit-identically, so a "
        "pooled sweep pays construction once instead of per point; it "
        "must at least match fresh construction (simulation dominates)");

    harness::Sweep fresh_sweep = figure7Sweep(1);
    fresh_sweep.setPooling(false);
    harness::Sweep pooled_sweep = figure7Sweep(1);

    std::vector<harness::SweepResult> fresh, pooled;
    const double fresh_s = timedRun(fresh_sweep, fresh);
    const double pooled_s = timedRun(pooled_sweep, pooled);

    fatal_if(fresh.size() != pooled.size(), "pool sweep size mismatch");
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        const harness::SimResult &a = harness::requireOk(fresh[i]);
        const harness::SimResult &b = harness::requireOk(pooled[i]);
        fatal_if(a.core.cycles != b.core.cycles ||
                     a.core.archInsts != b.core.archInsts ||
                     a.stats != b.stats || a.statsText != b.statsText,
                 "pooled sweep diverged on %s", fresh[i].name.c_str());
    }

    const double pool_speedup = fresh_s / pooled_s;
    const std::uint64_t pool_ctor = pooled_sweep.pool().constructions();
    const std::uint64_t pool_reuse = pooled_sweep.pool().reuses();
    std::printf("fresh  (ctor/point): %.2fs\n", fresh_s);
    std::printf("pooled (reset)     : %.2fs (%llu constructions, "
                "%llu reuses)\n",
                pooled_s, static_cast<unsigned long long>(pool_ctor),
                static_cast<unsigned long long>(pool_reuse));
    std::printf("pooling speedup    : %.3fx (acceptance: >= 0.9x)\n",
                pool_speedup);
    std::printf("results bit-identical: yes (cycles, insts, all stats, "
                "stats text)\n");

    Json root = Json::object();
    root.set("bench", "simulator_throughput");
    root.set("mode", "die-irb");
    root.set("units", "per host second");
    root.set("workloads", std::move(sched_rows));
    root.set("geomean_speedup", geo);
    if (!baseline_path.empty())
        root.set("baseline",
                 Json::object()
                     .set("path", baseline_path)
                     .set("geomean_ratio", base_ratio));
    // Gate the parallel speedup only where the host can deliver it; on
    // narrower hosts, record the skip explicitly so a passing-looking
    // ratio from a 1-core runner can't be mistaken for a gated result.
    const bool gate_sweep = par_jobs >= 4 && hw >= 4;
    root.set("sweep",
             Json::object()
                 .set("points", serial.size())
                 .set("serial_seconds", serial_s)
                 .set("parallel_seconds", par_s)
                 .set("jobs", par_jobs)
                 .set("hardware_threads", hw)
                 .set("speedup", sweep_speedup)
                 .set("gate", gate_sweep ? "enforced"
                                         : "gate_skipped_nproc")
                 .set("bit_identical", true));
    root.set("core_pool",
             Json::object()
                 .set("points", fresh.size())
                 .set("fresh_seconds", fresh_s)
                 .set("pooled_seconds", pooled_s)
                 .set("speedup", pool_speedup)
                 .set("constructions", pool_ctor)
                 .set("reuses", pool_reuse)
                 .set("bit_identical", true));
    harness::writeJsonReport(json_path, root);
    std::printf("wrote %s\n", json_path.c_str());

    if (!gate_sweep) {
        std::printf("gate_skipped_nproc: parallel-sweep gate skipped "
                    "(hardware threads %u, jobs %u; gating needs >= 4 of "
                    "each)\n",
                    hw, par_jobs);
    } else if (sweep_speedup < 2.0) {
        std::printf("FAIL: sweep speedup %.2fx < 2x at jobs=%u\n",
                    sweep_speedup, par_jobs);
        return 1;
    }
    if (!baseline_path.empty() && base_ratio < 0.98) {
        std::printf("FAIL: geomean cycles/sec fell to %.4fx of baseline "
                    "(trace hooks must cost < 2%%)\n",
                    base_ratio);
        return 1;
    }
    // Lenient: pooling must not *cost* anything material; on a loaded
    // host the two timings can jitter a few percent either way.
    if (pool_speedup < 0.9) {
        std::printf("FAIL: pooled sweep %.3fx slower than fresh "
                    "construction\n",
                    pool_speedup);
        return 1;
    }
    return geo >= 1.2 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // A fatal condition (e.g. a --baseline file that matches nothing)
    // must be a loud clean exit, not an uncaught-exception abort.
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "bench_throughput: %s\n", e.what());
        return 1;
    }
}
