/**
 * @file
 * Simulator throughput: host-side cycles/sec and retired-instr/sec for the
 * reference scan scheduler vs the incremental ready_list scheduler, per
 * kernel, on the full DIE-IRB machine. The two schedulers are
 * cycle-for-cycle identical (test_scheduler_diff proves it), so the only
 * thing this bench measures is how fast the simulator itself runs.
 * Emits BENCH_throughput.json (path overridable as argv[1]).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Table;

namespace
{

struct Measured
{
    double seconds = 0;      //!< host seconds per simulation
    double cycles = 0;       //!< simulated cycles per run
    double archInsts = 0;    //!< retired architectural instructions per run
    double cyclesPerSec = 0; //!< simulated cycles per host second
    double instsPerSec = 0;  //!< retired instructions per host second
};

Measured
timeScheduler(const std::string &kernel, const std::string &scheduler)
{
    Config cfg = harness::baseConfig("die-irb");
    cfg.set("core.scheduler", scheduler);

    // One untimed warm-up run to fault in code and host caches.
    const harness::SimResult warm = harness::runWorkload(kernel, cfg);

    Measured m;
    m.cycles = static_cast<double>(warm.core.cycles);
    m.archInsts = static_cast<double>(warm.core.archInsts);

    // Repeat until enough host time has accumulated for a stable rate.
    using clock = std::chrono::steady_clock;
    double total = 0;
    int reps = 0;
    while (total < 0.25 || reps < 3) {
        const auto t0 = clock::now();
        const harness::SimResult r = harness::runWorkload(kernel, cfg);
        const auto t1 = clock::now();
        total += std::chrono::duration<double>(t1 - t0).count();
        ++reps;
        fatal_if(r.core.cycles != warm.core.cycles,
                 "non-deterministic run for %s/%s", kernel.c_str(),
                 scheduler.c_str());
    }
    m.seconds = total / reps;
    m.cyclesPerSec = m.cycles / m.seconds;
    m.instsPerSec = m.archInsts / m.seconds;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_throughput.json";

    harness::banner(
        "Simulator throughput — scan vs ready_list scheduler",
        "both schedulers are bit-identical in simulated behaviour; the "
        "ready_list hot loop visits only actionable RUU entries and must "
        "be >= 2x faster in simulated cycles per host second");

    Table t({"workload", "sim cycles", "scan Mcyc/s", "list Mcyc/s",
             "scan Minst/s", "list Minst/s", "speedup"});

    std::vector<double> speedups;
    std::string rows_json;
    for (const auto &w : workloads::list()) {
        const Measured scan = timeScheduler(w.name, "scan");
        const Measured list = timeScheduler(w.name, "ready_list");
        fatal_if(scan.cycles != list.cycles,
                 "scheduler divergence on %s: %f vs %f cycles",
                 w.name.c_str(), scan.cycles, list.cycles);

        const double speedup = list.cyclesPerSec / scan.cyclesPerSec;
        speedups.push_back(speedup);

        t.row()
            .cell(w.name)
            .num(scan.cycles, 0)
            .num(scan.cyclesPerSec / 1e6, 2)
            .num(list.cyclesPerSec / 1e6, 2)
            .num(scan.instsPerSec / 1e6, 2)
            .num(list.instsPerSec / 1e6, 2)
            .num(speedup, 2);
        std::fflush(stdout);

        char row[512];
        std::snprintf(
            row, sizeof(row),
            "    {\"workload\": \"%s\", \"sim_cycles\": %.0f, "
            "\"arch_insts\": %.0f,\n"
            "     \"scan\": {\"cycles_per_sec\": %.0f, "
            "\"insts_per_sec\": %.0f},\n"
            "     \"ready_list\": {\"cycles_per_sec\": %.0f, "
            "\"insts_per_sec\": %.0f},\n"
            "     \"speedup\": %.3f}",
            w.name.c_str(), scan.cycles, scan.archInsts, scan.cyclesPerSec,
            scan.instsPerSec, list.cyclesPerSec, list.instsPerSec, speedup);
        if (!rows_json.empty())
            rows_json += ",\n";
        rows_json += row;
    }

    const double geo = harness::geomean(speedups);
    std::printf("%s\n", t.render().c_str());
    std::printf("geomean ready_list speedup: %.2fx (acceptance: >= 2x)\n",
                geo);

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    fatal_if(!f, "cannot write %s", json_path.c_str());
    std::fprintf(f,
                 "{\n  \"bench\": \"simulator_throughput\",\n"
                 "  \"mode\": \"die-irb\",\n"
                 "  \"units\": \"per host second\",\n"
                 "  \"workloads\": [\n%s\n  ],\n"
                 "  \"geomean_speedup\": %.3f\n}\n",
                 rows_json.c_str(), geo);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());

    return geo >= 2.0 ? 0 : 1;
}
