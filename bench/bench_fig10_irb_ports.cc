/**
 * @file
 * Figure 10 (reconstructed): sensitivity of DIE-IRB to the IRB port
 * budget. The paper chooses 4R/2W/2RW and argues contention is low
 * because only the duplicate stream looks up and the effective per-stream
 * width is half the machine width; this sweep verifies that claim and
 * shows where starvation bites.
 *
 * Runs on the parallel sweep engine (--jobs N / DIREB_JOBS); emits
 * BENCH_fig10_irb_ports.json.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

namespace
{

struct PortCfg
{
    const char *name;
    int r, w, rw;
};

const std::vector<PortCfg> cfgs = {
    {"1R/1W/0RW", 1, 1, 0}, {"2R/1W/0RW", 2, 1, 0},
    {"2R/2W/1RW", 2, 2, 1}, {"4R/2W/2RW (paper)", 4, 2, 2},
    {"8R/4W/4RW", 8, 4, 4},
};

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Figure 10 — DIE-IRB IPC vs IRB port budget",
        "4R/2W/2RW suffices: only the duplicate stream performs lookups "
        "and the effective dispatch/commit rate is half the machine "
        "width, so more ports buy almost nothing");

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const auto &w : workloads::list()) {
        for (const auto &c : cfgs) {
            Config cfg = harness::baseConfig("die-irb");
            cfg.setInt("irb.read_ports", c.r);
            cfg.setInt("irb.write_ports", c.w);
            cfg.setInt("irb.rw_ports", c.rw);
            sweep.add(w.name + "/" + c.name, w.name, std::move(cfg));
        }
    }
    const auto results = sweep.run();

    std::vector<std::string> cols = {"workload"};
    for (const auto &c : cfgs)
        cols.push_back(c.name);
    cols.push_back("drop% @paper");
    Table t(cols);

    std::vector<std::vector<double>> ipcs(cfgs.size());
    Json rows = Json::array();

    std::size_t idx = 0;
    for (const auto &w : workloads::list()) {
        t.row().cell(w.name);
        double paper_drop = 0.0;
        Json byPorts = Json::object();
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            const harness::SimResult &r =
                harness::requireOk(results[idx++]);
            ipcs[i].push_back(r.ipc());
            t.num(r.ipc(), 3);
            byPorts.set(cfgs[i].name, r.ipc());
            if (i == 3) {
                paper_drop = r.stat("core.irb.lookup_port_drops") /
                             std::max(1.0, r.stat("core.irb.lookups"));
            }
        }
        t.pct(paper_drop, 1);
        rows.push(Json::object()
                      .set("workload", w.name)
                      .set("ipc_by_ports", std::move(byPorts))
                      .set("paper_drop_rate", paper_drop));
    }

    t.row().cell("== avg IPC ==");
    Json avg = Json::object();
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        t.num(harness::mean(ipcs[i]), 3);
        avg.set(cfgs[i].name, harness::mean(ipcs[i]));
    }
    t.cell("");

    std::printf("%s\n", t.render().c_str());

    Json root = Json::object();
    root.set("bench", "fig10_irb_ports");
    root.set("jobs", sweep.jobs());
    root.set("workloads", std::move(rows));
    root.set("avg_ipc", std::move(avg));
    harness::writeJsonReport("BENCH_fig10_irb_ports.json", root);
    std::printf("wrote BENCH_fig10_irb_ports.json\n");
    return 0;
}
