/**
 * @file
 * Figure 10 (reconstructed): sensitivity of DIE-IRB to the IRB port
 * budget. The paper chooses 4R/2W/2RW and argues contention is low
 * because only the duplicate stream looks up and the effective per-stream
 * width is half the machine width; this sweep verifies that claim and
 * shows where starvation bites.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Table;

namespace
{

struct PortCfg
{
    const char *name;
    int r, w, rw;
};

const std::vector<PortCfg> cfgs = {
    {"1R/1W/0RW", 1, 1, 0}, {"2R/1W/0RW", 2, 1, 0},
    {"2R/2W/1RW", 2, 2, 1}, {"4R/2W/2RW (paper)", 4, 2, 2},
    {"8R/4W/4RW", 8, 4, 4},
};

} // namespace

int
main()
{
    setQuiet(true);
    harness::banner(
        "Figure 10 — DIE-IRB IPC vs IRB port budget",
        "4R/2W/2RW suffices: only the duplicate stream performs lookups "
        "and the effective dispatch/commit rate is half the machine "
        "width, so more ports buy almost nothing");

    std::vector<std::string> cols = {"workload"};
    for (const auto &c : cfgs)
        cols.push_back(c.name);
    cols.push_back("drop% @paper");
    Table t(cols);

    std::vector<std::vector<double>> ipcs(cfgs.size());

    for (const auto &w : workloads::list()) {
        t.row().cell(w.name);
        double paper_drop = 0.0;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            Config cfg = harness::baseConfig("die-irb");
            cfg.setInt("irb.read_ports", cfgs[i].r);
            cfg.setInt("irb.write_ports", cfgs[i].w);
            cfg.setInt("irb.rw_ports", cfgs[i].rw);
            const auto r = harness::runWorkload(w.name, cfg);
            ipcs[i].push_back(r.ipc());
            t.num(r.ipc(), 3);
            if (i == 3) {
                paper_drop = r.stat("core.irb.lookup_port_drops") /
                             std::max(1.0, r.stat("core.irb.lookups"));
            }
        }
        t.pct(paper_drop, 1);
        std::fflush(stdout);
    }

    t.row().cell("== avg IPC ==");
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        t.num(harness::mean(ipcs[i]), 3);
    t.cell("");

    std::printf("%s\n", t.render().c_str());
    return 0;
}
