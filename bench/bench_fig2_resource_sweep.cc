/**
 * @file
 * Figure 2 (in the supplied paper text, §2.2): percentage IPC loss with
 * respect to SIE for base DIE and the seven resource-doubling
 * configurations (2xALU, 2xRUU, 2xWidths and their combinations) across
 * the twelve workloads.
 *
 * Paper shape: base DIE loses ~22% on average (spread ~1%..43%); doubling
 * the ALUs is the most effective single lever; doubling all three gets
 * within a whisker of SIE.
 *
 * Runs on the parallel sweep engine (--jobs N / DIREB_JOBS); emits
 * BENCH_fig2_resource_sweep.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

namespace
{

struct Variant
{
    const char *name;
    bool twoXAlu;
    bool twoXRuu;
    bool twoXWidths;
};

const std::vector<Variant> variants = {
    {"DIE", false, false, false},
    {"DIE-2xALU", true, false, false},
    {"DIE-2xRUU", false, true, false},
    {"DIE-2xWidths", false, false, true},
    {"DIE-2xALU-2xRUU", true, true, false},
    {"DIE-2xALU-2xWidths", true, false, true},
    {"DIE-2xRUU-2xWidths", false, true, true},
    {"DIE-2xALL", true, true, true},
};

Config
makeConfig(const Variant &v)
{
    Config c = harness::baseConfig("die");
    if (v.twoXAlu) {
        c.setInt("fu.intalu", 8);
        c.setInt("fu.intmul", 4);
        c.setInt("fu.fpadd", 4);
        c.setInt("fu.fpmul", 2);
    }
    if (v.twoXRuu) {
        c.setInt("ruu.size", 256);
        c.setInt("lsq.size", 128);
    }
    if (v.twoXWidths) {
        c.setInt("width.fetch", 16);
        c.setInt("width.decode", 16);
        c.setInt("width.issue", 16);
        c.setInt("width.commit", 16);
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Figure 2 — % IPC loss vs SIE for DIE resource-doubling variants",
        "base DIE ~22% avg loss (1%..43% spread); 2xALU is the best single "
        "lever (~13%); 2xALU+2xRUU+2xWidths ~= SIE");

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const auto &w : workloads::list()) {
        sweep.add(w.name + "/sie", w.name, harness::baseConfig("sie"));
        for (const auto &v : variants)
            sweep.add(w.name + "/" + v.name, w.name, makeConfig(v));
    }
    const auto results = sweep.run();

    std::vector<std::string> cols = {"workload", "SIE IPC"};
    for (const auto &v : variants)
        cols.push_back(v.name);
    Table table(cols);

    std::vector<std::vector<double>> losses(variants.size());
    Json rows = Json::array();

    std::size_t idx = 0;
    for (const auto &w : workloads::list()) {
        const harness::SimResult &sie = harness::requireOk(results[idx++]);
        table.row().cell(w.name).num(sie.ipc(), 3);
        Json row = Json::object();
        row.set("workload", w.name).set("sie_ipc", sie.ipc());
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const harness::SimResult &r =
                harness::requireOk(results[idx++]);
            const double loss = 1.0 - r.ipc() / sie.ipc();
            losses[i].push_back(loss);
            table.pct(loss, 1);
            row.set(variants[i].name,
                    Json::object().set("ipc", r.ipc()).set("loss", loss));
        }
        rows.push(std::move(row));
    }

    table.row().cell("== average ==").cell("");
    Json avg = Json::object();
    for (std::size_t i = 0; i < variants.size(); ++i) {
        table.pct(harness::mean(losses[i]), 1);
        avg.set(variants[i].name, harness::mean(losses[i]));
    }

    std::printf("%s\n", table.render().c_str());

    Json root = Json::object();
    root.set("bench", "fig2_resource_sweep");
    root.set("jobs", sweep.jobs());
    root.set("workloads", std::move(rows));
    root.set("avg_loss", std::move(avg));
    harness::writeJsonReport("BENCH_fig2_resource_sweep.json", root);
    std::printf("wrote BENCH_fig2_resource_sweep.json\n");
    return 0;
}
