/**
 * @file
 * Figure 7 (reconstructed — the paper's headline result, §1/§4): IPC of
 * SIE vs DIE vs DIE-IRB vs DIE-2xALU per workload.
 *
 * Paper claims to match: DIE-IRB regains, on average, ~50% of the IPC
 * loss attributable to ALU bandwidth (the DIE -> DIE-2xALU gap) and ~23%
 * of the overall DIE loss — without touching the issue width or adding
 * ALUs.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Table;

namespace
{

Config
die2xAlu()
{
    Config c = harness::baseConfig("die");
    c.setInt("fu.intalu", 8);
    c.setInt("fu.intmul", 4);
    c.setInt("fu.fpadd", 4);
    c.setInt("fu.fpmul", 2);
    return c;
}

} // namespace

int
main()
{
    setQuiet(true);
    harness::banner(
        "Figure 7 — DIE-IRB vs SIE / DIE / DIE-2xALU (headline result)",
        "DIE-IRB regains ~50% of the ALU-attributable IPC loss "
        "(DIE -> DIE-2xALU gap) and ~23% of the overall DIE loss, with "
        "no extra ALUs and no issue-width increase");

    Table t({"workload", "SIE", "DIE", "DIE-IRB", "DIE-2xALU",
             "DIE loss", "IRB loss", "ALU-gap recovered",
             "overall recovered"});

    std::vector<double> alu_rec, overall_rec, die_losses, irb_losses;

    for (const auto &w : workloads::list()) {
        const auto sie =
            harness::runWorkload(w.name, harness::baseConfig("sie"));
        const auto die =
            harness::runWorkload(w.name, harness::baseConfig("die"));
        const auto irb =
            harness::runWorkload(w.name, harness::baseConfig("die-irb"));
        const auto alu = harness::runWorkload(w.name, die2xAlu());

        const double die_loss = 1.0 - die.ipc() / sie.ipc();
        const double irb_loss = 1.0 - irb.ipc() / sie.ipc();
        const double alu_gap = alu.ipc() - die.ipc();
        const double alu_frac =
            alu_gap > 1e-9 ? (irb.ipc() - die.ipc()) / alu_gap : 0.0;
        const double overall_frac =
            die_loss > 1e-9 ? (die_loss - irb_loss) / die_loss : 0.0;

        die_losses.push_back(die_loss);
        irb_losses.push_back(irb_loss);
        if (alu_gap / die.ipc() > 0.02) // only where ALUs actually matter
            alu_rec.push_back(alu_frac);
        overall_rec.push_back(overall_frac);

        t.row()
            .cell(w.name)
            .num(sie.ipc(), 3)
            .num(die.ipc(), 3)
            .num(irb.ipc(), 3)
            .num(alu.ipc(), 3)
            .pct(die_loss, 1)
            .pct(irb_loss, 1)
            .pct(alu_frac, 0)
            .pct(overall_frac, 0);
        std::fflush(stdout);
    }

    t.row()
        .cell("== average ==")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .pct(harness::mean(die_losses), 1)
        .pct(harness::mean(irb_losses), 1)
        .pct(harness::mean(alu_rec), 0)
        .pct(harness::mean(overall_rec), 0);

    std::printf("%s\n", t.render().c_str());
    std::printf("paper: avg DIE loss ~22%%, ALU-gap recovery ~50%%, "
                "overall recovery ~23%%\n");
    return 0;
}
