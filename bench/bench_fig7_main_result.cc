/**
 * @file
 * Figure 7 (reconstructed — the paper's headline result, §1/§4): IPC of
 * SIE vs DIE vs DIE-IRB vs DIE-2xALU per workload.
 *
 * Paper claims to match: DIE-IRB regains, on average, ~50% of the IPC
 * loss attributable to ALU bandwidth (the DIE -> DIE-2xALU gap) and ~23%
 * of the overall DIE loss — without touching the issue width or adding
 * ALUs.
 *
 * The matrix runs on the parallel sweep engine (--jobs N / DIREB_JOBS)
 * and also lands in BENCH_fig7_main_result.json.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

namespace
{

Config
die2xAlu()
{
    Config c = harness::baseConfig("die");
    c.setInt("fu.intalu", 8);
    c.setInt("fu.intmul", 4);
    c.setInt("fu.fpadd", 4);
    c.setInt("fu.fpmul", 2);
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Figure 7 — DIE-IRB vs SIE / DIE / DIE-2xALU (headline result)",
        "DIE-IRB regains ~50% of the ALU-attributable IPC loss "
        "(DIE -> DIE-2xALU gap) and ~23% of the overall DIE loss, with "
        "no extra ALUs and no issue-width increase");

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const auto &w : workloads::list()) {
        sweep.add(w.name + "/sie", w.name, harness::baseConfig("sie"));
        sweep.add(w.name + "/die", w.name, harness::baseConfig("die"));
        sweep.add(w.name + "/die-irb", w.name,
                  harness::baseConfig("die-irb"));
        sweep.add(w.name + "/die-2xalu", w.name, die2xAlu());
    }
    const auto results = sweep.run();

    Table t({"workload", "SIE", "DIE", "DIE-IRB", "DIE-2xALU",
             "DIE loss", "IRB loss", "ALU-gap recovered",
             "overall recovered"});

    std::vector<double> alu_rec, overall_rec, die_losses, irb_losses;
    Json rows = Json::array();

    std::size_t idx = 0;
    for (const auto &w : workloads::list()) {
        const auto &sie = harness::requireOk(results[idx++]);
        const auto &die = harness::requireOk(results[idx++]);
        const auto &irb = harness::requireOk(results[idx++]);
        const auto &alu = harness::requireOk(results[idx++]);

        const double die_loss = 1.0 - die.ipc() / sie.ipc();
        const double irb_loss = 1.0 - irb.ipc() / sie.ipc();
        const double alu_gap = alu.ipc() - die.ipc();
        const double alu_frac =
            alu_gap > 1e-9 ? (irb.ipc() - die.ipc()) / alu_gap : 0.0;
        const double overall_frac =
            die_loss > 1e-9 ? (die_loss - irb_loss) / die_loss : 0.0;

        die_losses.push_back(die_loss);
        irb_losses.push_back(irb_loss);
        if (alu_gap / die.ipc() > 0.02) // only where ALUs actually matter
            alu_rec.push_back(alu_frac);
        overall_rec.push_back(overall_frac);

        t.row()
            .cell(w.name)
            .num(sie.ipc(), 3)
            .num(die.ipc(), 3)
            .num(irb.ipc(), 3)
            .num(alu.ipc(), 3)
            .pct(die_loss, 1)
            .pct(irb_loss, 1)
            .pct(alu_frac, 0)
            .pct(overall_frac, 0);

        rows.push(Json::object()
                      .set("workload", w.name)
                      .set("sie_ipc", sie.ipc())
                      .set("die_ipc", die.ipc())
                      .set("die_irb_ipc", irb.ipc())
                      .set("die_2xalu_ipc", alu.ipc())
                      .set("die_loss", die_loss)
                      .set("irb_loss", irb_loss)
                      .set("alu_gap_recovered", alu_frac)
                      .set("overall_recovered", overall_frac));
    }

    t.row()
        .cell("== average ==")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .pct(harness::mean(die_losses), 1)
        .pct(harness::mean(irb_losses), 1)
        .pct(harness::mean(alu_rec), 0)
        .pct(harness::mean(overall_rec), 0);

    std::printf("%s\n", t.render().c_str());
    std::printf("paper: avg DIE loss ~22%%, ALU-gap recovery ~50%%, "
                "overall recovery ~23%%\n");

    Json root = Json::object();
    root.set("bench", "fig7_main_result");
    root.set("jobs", sweep.jobs());
    root.set("workloads", std::move(rows));
    root.set("avg", Json::object()
                        .set("die_loss", harness::mean(die_losses))
                        .set("irb_loss", harness::mean(irb_losses))
                        .set("alu_gap_recovered", harness::mean(alu_rec))
                        .set("overall_recovered",
                             harness::mean(overall_rec)));
    harness::writeJsonReport("BENCH_fig7_main_result.json", root);
    std::printf("wrote BENCH_fig7_main_result.json\n");
    return 0;
}
