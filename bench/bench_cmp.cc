/**
 * @file
 * CMP scaling study: aggregate IPC and IRB reuse rate versus core count
 * on the shared-L2 chip. Every core runs the same kernel (rate mode),
 * plus one heterogeneous-bundle point, so the shared L2 / bank
 * arbitration / coherence costs show up as the delta from linear
 * scaling while the per-core IRB keeps its single-core reuse profile.
 *
 * Also cross-checks the CMP plumbing: the cmp.cores=1 sweep point must
 * reproduce the legacy single-core run cycle-for-cycle.
 *
 * Runs on the parallel sweep engine (--jobs N / DIREB_JOBS); emits
 * BENCH_cmp.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

using namespace direb;
using harness::Json;
using harness::Table;

namespace
{

struct Point
{
    std::string mode;
    unsigned cores;
    std::string bundle; //!< empty = every core runs `route`
};

/** "core." for a single-core run, "core<i>." on the chip. */
std::string
corePrefix(unsigned cores, unsigned c)
{
    return cores == 1 ? "core." : "core" + std::to_string(c) + ".";
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "CMP scaling — IPC and IRB reuse vs core count",
        "the IRB is a per-core structure: reuse rate holds as cores "
        "share one banked L2, so DIE-IRB's ALU-bandwidth recovery "
        "survives CMP integration");

    const std::vector<Point> points = {
        {"sie", 1, ""},     {"sie", 2, ""},     {"sie", 4, ""},
        {"die-irb", 1, ""}, {"die-irb", 2, ""}, {"die-irb", 4, ""},
        {"die-irb", 4, "mix_int"},
    };

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const Point &p : points) {
        Config cfg = harness::baseConfig(p.mode);
        cfg.set("cmp.cores", std::to_string(p.cores));
        if (!p.bundle.empty())
            cfg.set("cmp.bundle", p.bundle);
        const std::string name = p.mode + "/x" + std::to_string(p.cores) +
                                 (p.bundle.empty() ? "" : "/" + p.bundle);
        sweep.add(name, "route", cfg);
    }
    const auto results = sweep.run();

    // Legacy cross-check: the cores=1 points must be bit-identical to a
    // run that never mentions cmp.* at all.
    for (const char *mode : {"sie", "die-irb"}) {
        const harness::SimResult legacy =
            harness::runWorkload("route", harness::baseConfig(mode));
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (points[i].mode != mode || points[i].cores != 1)
                continue;
            const harness::SimResult &r = harness::requireOk(results[i]);
            fatal_if(r.core.cycles != legacy.core.cycles,
                     "%s cmp.cores=1 diverged from the legacy "
                     "single-core path: %llu vs %llu cycles",
                     mode,
                     static_cast<unsigned long long>(r.core.cycles),
                     static_cast<unsigned long long>(legacy.core.cycles));
        }
    }

    Table t({"mode", "cores", "bundle", "IPC", "IPC/core", "IRB reuse",
             "L2 miss", "bank confl", "DRAM"});
    Json rows = Json::array();

    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const harness::SimResult &r = harness::requireOk(results[i]);

        double reuse_hits = 0, reuse_tests = 0;
        Json per_core_ipc = Json::array();
        for (unsigned c = 0; c < p.cores; ++c) {
            const std::string pre = corePrefix(p.cores, c);
            reuse_hits += r.stat(pre + "irb.reuse_hits");
            reuse_tests += r.stat(pre + "irb.reuse_hits") +
                           r.stat(pre + "irb.reuse_misses");
        }
        if (p.cores == 1) {
            per_core_ipc.push(r.core.ipc);
        } else {
            for (const CoreResult &c : r.cores)
                per_core_ipc.push(c.ipc);
        }
        const double reuse =
            reuse_tests > 0 ? reuse_hits / reuse_tests : 0.0;

        const std::string l2 =
            p.cores == 1 ? "core.memhier.l2." : "mem.l2.";
        const double l2_acc =
            r.stat(l2 + "hits") + r.stat(l2 + "misses");
        const double l2_miss =
            l2_acc > 0 ? r.stat(l2 + "misses") / l2_acc : 0.0;
        const double bank_conflicts = r.stat("mem.l2bus.conflicts");
        const double dram = r.stat("mem.dram.accesses");

        t.row()
            .cell(p.mode)
            .num(p.cores, 0)
            .cell(p.bundle.empty() ? "-" : p.bundle)
            .num(r.core.ipc, 3)
            .num(r.core.ipc / p.cores, 3)
            .pct(reuse, 1)
            .pct(l2_miss, 1)
            .num(bank_conflicts, 0)
            .num(dram, 0);

        rows.push(Json::object()
                      .set("mode", p.mode)
                      .set("cores", p.cores)
                      .set("bundle", p.bundle)
                      .set("ipc", r.core.ipc)
                      .set("ipc_per_core", std::move(per_core_ipc))
                      .set("irb_reuse_rate", reuse)
                      .set("l2_miss_rate", l2_miss)
                      .set("bank_conflicts", bank_conflicts)
                      .set("dram_accesses", dram)
                      .set("cycles",
                           static_cast<std::uint64_t>(r.core.cycles)));
    }

    std::printf("%s\n", t.render().c_str());

    Json root = Json::object();
    root.set("bench", "cmp");
    root.set("jobs", sweep.jobs());
    root.set("points", std::move(rows));
    harness::writeJsonReport("BENCH_cmp.json", root);
    std::printf("wrote BENCH_cmp.json\n");
    return 0;
}
