/**
 * @file
 * Columnar store benchmark: pack / unpack / query throughput and the
 * compression ratio over a synthetic sweep.cache directory of >= 10k
 * entries shaped like real Figure-7 sweep results (shared stat-key
 * dictionary, monotone counters, repetitive stats_text templates).
 *
 * The directory is rendered to disk with the real cache serialiser
 * (harness::renderSweepCacheEntry), packed with store::packDirectory —
 * which includes the parse + re-render byte-identity proof per entry —
 * unpacked back and byte-compared, and then queried repeatedly through
 * store::runQuery. Emits BENCH_store.json; check_perf_floor.py attaches
 * it report-only via --store-bench.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "store/query.hh"
#include "store/store.hh"

using namespace direb;
using harness::Json;

namespace
{

constexpr std::size_t numEntries = 10'000;

double
seconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Deterministic pseudo-random stream (no host randomness in benches). */
std::uint64_t
next(std::uint64_t &state)
{
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
}

/**
 * One synthetic sweep result shaped like a real Figure-7 point: ~20
 * shared stat keys with counter-like values, an exact-fraction IPC, and
 * a stats_text rendered from the same keys (the repetitive template a
 * real statistics dump produces).
 */
harness::SweepResult
makeEntry(std::size_t i, std::uint64_t &rng)
{
    static const char *kernels[] = {"ammp", "applu", "apsi", "art",
                                    "equake", "gcc", "gzip", "mcf",
                                    "mesa", "parser", "twolf", "vpr"};
    static const char *stats[] = {
        "core.commit.insts",      "core.commit.cycles",
        "core.fetch.insts",       "core.dispatch.insts",
        "core.issue.insts",       "core.issue.alu_ops",
        "core.ruu.occupancy_sum", "core.lsq.loads",
        "core.lsq.stores",        "irb.reuse_hits",
        "irb.reuse_misses",       "irb.evictions",
        "bp.lookups",             "bp.mispredicts",
        "dl1.hits",               "dl1.misses",
        "il1.hits",               "il1.misses",
        "l2.hits",                "l2.misses",
    };

    harness::SweepResult r;
    r.name = "fig7/lat" + std::to_string(1 + i % 3) + "/rb" +
             std::to_string(4 << (i % 4)) + "/" + kernels[i % 12];
    r.status = i % 50 == 49 ? harness::PointStatus::Timeout
                            : harness::PointStatus::Ok;
    if (r.status == harness::PointStatus::Timeout)
        r.error = "exhausted the 50000000-instruction budget";
    r.attempts = 1;
    r.sim.core.stop = r.status == harness::PointStatus::Ok
                          ? StopReason::Halted
                          : StopReason::InstLimit;
    r.sim.core.cycles = 400'000 + i * 37 + next(rng) % 1'000;
    r.sim.core.archInsts = 300'000 + i * 29 + next(rng) % 1'000;
    r.sim.core.ruuEntriesCommitted = 2 * r.sim.core.archInsts;
    // Exact 1/64 fractions: representable doubles, stored raw.
    r.sim.core.ipc = 0.5 + double(next(rng) % 96) / 64.0;

    std::string text = "---- statistics (" + r.name + ") ----\n";
    for (const char *key : stats) {
        const double v =
            double(100'000 + i * 13 + next(rng) % 10'000);
        r.sim.stats[key] = v;
        text += "  ";
        text += key;
        text += " ";
        text += std::to_string(static_cast<std::uint64_t>(v));
        text += "\n";
    }
    r.sim.stats["core.ipc"] = r.sim.core.ipc;
    r.sim.output = "checksum " + std::to_string(next(rng) % 1'000'000) +
                   "\n";
    r.sim.statsText = std::move(text);
    return r;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

} // namespace

int
main()
{
    setQuiet(true);
    harness::banner(
        "store — pack/unpack/query throughput and compression ratio",
        "one artifact file replaces a sweep.cache directory; byte "
        "identity is proven per entry at pack time");

    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "direb_bench_store";
    fs::remove_all(root);
    const fs::path dir = root / "cache";
    const fs::path dir2 = root / "unpacked";
    fs::create_directories(dir);

    // ---- render the synthetic sweep.cache directory -----------------
    std::uint64_t rng = 20260808;
    std::uint64_t raw_bytes = 0;
    for (std::size_t i = 0; i < numEntries; ++i) {
        const harness::SweepResult r = makeEntry(i, rng);
        const std::string bytes = harness::renderSweepCacheEntry(r);
        raw_bytes += bytes.size();
        char name[32];
        std::snprintf(name, sizeof(name), "%016zx.json", i);
        std::ofstream out(dir / name, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        fatal_if(!out, "short write rendering the bench directory");
    }

    // ---- pack (includes the per-entry byte-identity proof) ----------
    const auto t_pack = std::chrono::steady_clock::now();
    const store::Artifact art = store::packDirectory(dir.string());
    const std::string encoded = store::encodeArtifact(art);
    const double pack_s = seconds(t_pack);
    fatal_if(art.entries.size() != numEntries,
             "%zu of %zu entries did not round-trip byte-identically",
             numEntries - art.entries.size(), numEntries);

    const double ratio = double(raw_bytes) / double(encoded.size());

    // ---- unpack + directory byte-compare ----------------------------
    const auto t_unpack = std::chrono::steady_clock::now();
    const store::Artifact back = store::decodeArtifact(encoded);
    store::unpackArtifact(back, dir2.string());
    const double unpack_s = seconds(t_unpack);

    std::size_t checked = 0;
    for (const auto &ent : fs::directory_iterator(dir)) {
        fatal_if(slurp(ent.path()) !=
                     slurp(dir2 / ent.path().filename()),
                 "unpack is not byte-identical for %s",
                 ent.path().filename().string().c_str());
        ++checked;
    }
    fatal_if(checked != numEntries, "unpacked directory is incomplete");

    // ---- query throughput -------------------------------------------
    const std::vector<const store::Artifact *> stores = {&back};
    store::QueryRequest req;
    req.metric = "ipc";
    req.groupBy = "name:2";
    req.aggs = {"count", "mean", "geomean"};
    constexpr unsigned queryIters = 50;
    double matched = 0;
    const auto t_query = std::chrono::steady_clock::now();
    for (unsigned q = 0; q < queryIters; ++q) {
        const Json resp = store::runQuery(stores, req);
        matched = resp.find("matched")->asNumber();
    }
    const double query_s = seconds(t_query);
    fatal_if(matched != double(numEntries), "query missed entries");

    const double query_points_per_sec =
        double(numEntries) * queryIters / query_s;

    // ---- report ------------------------------------------------------
    std::printf("entries            : %zu\n", numEntries);
    std::printf("raw bytes          : %llu\n",
                static_cast<unsigned long long>(raw_bytes));
    std::printf("artifact bytes     : %zu\n", encoded.size());
    std::printf("compression ratio  : %.2fx\n", ratio);
    std::printf("pack               : %.3f s (%.1f MB/s)\n", pack_s,
                raw_bytes / 1e6 / pack_s);
    std::printf("unpack             : %.3f s (%.1f MB/s)\n", unpack_s,
                raw_bytes / 1e6 / unpack_s);
    std::printf("query              : %u runs in %.3f s "
                "(%.1f Mpoints/s)\n",
                queryIters, query_s, query_points_per_sec / 1e6);

    Json root_json = Json::object();
    root_json.set("bench", "store");
    root_json.set("entries", static_cast<std::uint64_t>(numEntries));
    root_json.set("raw_bytes", static_cast<std::uint64_t>(raw_bytes));
    root_json.set("artifact_bytes",
                  static_cast<std::uint64_t>(encoded.size()));
    root_json.set("compression_ratio", ratio);
    root_json.set("byte_identical", true);
    root_json.set("pack_seconds", pack_s);
    root_json.set("pack_mb_per_sec", raw_bytes / 1e6 / pack_s);
    root_json.set("unpack_seconds", unpack_s);
    root_json.set("unpack_mb_per_sec", raw_bytes / 1e6 / unpack_s);
    root_json.set("query_iters", static_cast<std::uint64_t>(queryIters));
    root_json.set("query_seconds", query_s);
    root_json.set("query_points_per_sec", query_points_per_sec);
    harness::writeJsonReport("BENCH_store.json", root_json);
    std::printf("wrote BENCH_store.json\n");

    fs::remove_all(root);
    return 0;
}
