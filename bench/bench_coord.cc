/**
 * @file
 * dieirb-coord load generator: two in-process dieirb-serve backends, an
 * in-process coordinator sharding across them, and many concurrent
 * keep-alive clients each issuing streamed NDJSON sweeps through the
 * coordinator over real sockets.
 *
 * Every response is checked end to end — HTTP 200, intact chunked
 * framing all the way to the terminal chunk (a truncated stream is a
 * dropped response), one NDJSON line per point in exact request order,
 * a `"done"` summary with zero cancelled points, and byte-identical
 * bodies across every repetition (the merged two-backend stream must be
 * deterministic, not just complete).
 *
 * Acceptance: >= 100 sharded sweeps with zero dropped/short responses.
 *
 * Usage: bench_coord [BENCH_coord.json] [--connections N] [--sweeps N]
 *   --connections N   concurrent client connections (default 8)
 *   --sweeps N        sweeps per connection (default 16)
 */

#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "coord/coordinator.hh"
#include "harness/report.hh"
#include "service/io.hh"
#include "service/server.hh"

using namespace direb;
using harness::Json;

namespace
{

int
connectTo(unsigned short port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
fill(int fd, std::string &buf)
{
    char tmp[16384];
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0)
        return false;
    buf.append(tmp, static_cast<std::size_t>(n));
    return true;
}

/**
 * Read one chunked response off a keep-alive socket and decode it to
 * @p body. Returns the HTTP status, or 0 on any framing or transport
 * failure — including EOF before the terminal chunk, which is exactly
 * how a failed fan-out announces itself.
 */
int
readChunkedResponse(int fd, std::string &carry, std::string &body)
{
    std::size_t hdrEnd;
    while ((hdrEnd = carry.find("\r\n\r\n")) == std::string::npos) {
        if (!fill(fd, carry))
            return 0;
    }
    std::string headers = carry.substr(0, hdrEnd + 4);
    carry.erase(0, hdrEnd + 4);
    for (char &c : headers)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    const std::size_t sp = headers.find(' ');
    if (sp == std::string::npos)
        return 0;
    const int status = std::atoi(headers.c_str() + sp + 1);
    if (headers.find("transfer-encoding: chunked") == std::string::npos) {
        // Error responses are Content-Length framed.
        const std::size_t cl = headers.find("content-length:");
        if (cl == std::string::npos)
            return 0;
        const std::size_t want =
            std::strtoul(headers.c_str() + cl + 15, nullptr, 10);
        while (carry.size() < want) {
            if (!fill(fd, carry))
                return 0;
        }
        body = carry.substr(0, want);
        carry.erase(0, want);
        return status;
    }

    body.clear();
    for (;;) {
        std::size_t eol;
        while ((eol = carry.find("\r\n")) == std::string::npos) {
            if (!fill(fd, carry))
                return 0;
        }
        const std::size_t size =
            std::strtoul(carry.c_str(), nullptr, 16);
        carry.erase(0, eol + 2);
        while (carry.size() < size + 2) {
            if (!fill(fd, carry))
                return 0; // truncated mid-chunk: the stream failed
        }
        if (size == 0)
            return status; // terminal chunk: the stream completed
        body.append(carry, 0, size);
        carry.erase(0, size + 2);
    }
}

struct ClientResult
{
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::vector<double> latencies;   //!< seconds per completed sweep
    std::vector<std::string> bodies; //!< for the determinism check
};

/** One NDJSON body checked line by line against the request order. */
bool
checkSweepBody(const std::string &body,
               const std::vector<std::string> &names)
{
    std::size_t pos = 0;
    std::size_t idx = 0;
    bool sawDone = false;
    while (pos < body.size()) {
        const std::size_t nl = body.find('\n', pos);
        if (nl == std::string::npos)
            return false; // unterminated final line
        const std::string line = body.substr(pos, nl - pos);
        pos = nl + 1;
        try {
            const Json j = Json::parse(line);
            if (j.find("done")) {
                const Json *cancelled = j.find("cancelled");
                sawDone = j.find("done")->asBool() && cancelled &&
                          cancelled->asNumber() == 0;
                return sawDone && idx == names.size() &&
                       pos == body.size();
            }
            if (idx >= names.size())
                return false; // more lines than points
            const Json *name = j.find("name");
            if (!name || !name->isString() ||
                name->asString() != names[idx]) {
                return false; // out of order
            }
            ++idx;
        } catch (const std::exception &) {
            return false;
        }
    }
    return false; // no summary line
}

ClientResult
runClient(unsigned short port, unsigned sweeps, const std::string &wire,
          const std::vector<std::string> &names)
{
    ClientResult res;
    const int fd = connectTo(port);
    if (fd < 0) {
        res.failed = sweeps;
        return res;
    }
    std::string carry;
    for (unsigned i = 0; i < sweeps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!service::io::writeFull(fd, wire.data(), wire.size())) {
            res.failed += sweeps - i;
            break;
        }
        std::string body;
        const int status = readChunkedResponse(fd, carry, body);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (status == 200 && checkSweepBody(body, names)) {
            ++res.ok;
            res.latencies.push_back(dt.count());
            res.bodies.push_back(std::move(body));
        } else {
            ++res.failed;
            break; // chunk framing is gone; the connection is useless
        }
    }
    ::close(fd);
    return res;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double idx = p * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(idx + 0.5)];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_coord.json";
    unsigned connections = 8;
    unsigned sweeps = 16;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--connections" && i + 1 < argc) {
            connections = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (a == "--sweeps" && i + 1 < argc) {
            sweeps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            jsonPath = a;
        }
    }
    fatal_if(connections == 0 || sweeps == 0,
             "need at least one connection and one sweep");

    harness::banner("coord-load",
                    "sharded streamed sweeps across two backends: zero "
                    "dropped or short responses, deterministic merge");
    setQuiet(true);

    // Two backends + the coordinator, all in-process on kernel ports.
    service::ServerOptions bopts;
    bopts.port = 0;
    bopts.workers = 0;
    bopts.queueDepth = 4 * connections + 16;
    bopts.socketTimeoutMs = 120'000;
    bopts.idleTimeoutMs = 300'000;
    service::Server backend1(bopts);
    service::Server backend2(bopts);
    backend1.start();
    backend2.start();

    service::ServerOptions copts;
    copts.port = 0;
    copts.workers = 4 * connections + 16; // fan-outs block on backends
    copts.queueDepth = 4 * connections + 16;
    copts.modeName = "coord";
    copts.socketTimeoutMs = 120'000;
    copts.idleTimeoutMs = 300'000;
    service::Server front(copts);
    coord::CoordOptions ccfg;
    ccfg.backends = {
        "127.0.0.1:" + std::to_string(backend1.port()),
        "127.0.0.1:" + std::to_string(backend2.port()),
    };
    coord::Coordinator coordinator(front, ccfg);
    coordinator.start();
    front.start();

    // Small points: the bench measures the fan-out path, not the
    // simulator. Explicit names pin the expected merge order.
    std::vector<std::string> names;
    std::string points;
    for (int p = 0; p < 6; ++p) {
        names.push_back("p" + std::to_string(p));
        if (!points.empty())
            points += ", ";
        points += "{\"name\": \"p" + std::to_string(p) +
                  "\", \"workload\": \"route\", \"max_insts\": " +
                  std::to_string(8000 + 1000 * p) + "}";
    }
    const std::string body = "{\"points\": [" + points +
                             "], \"stream\": true, \"cache\": false}";
    const std::string wire =
        "POST /v1/sweep HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;

    std::printf("  %u connections x %u streamed sweeps x %zu points "
                "across 2 backends\n",
                connections, sweeps, names.size());

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    std::vector<ClientResult> results(connections);
    threads.reserve(connections);
    for (unsigned c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            results[c] =
                runClient(front.port(), sweeps, wire, names);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;

    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::vector<double> latencies;
    bool deterministic = true;
    const std::string *reference = nullptr;
    for (const ClientResult &r : results) {
        ok += r.ok;
        failed += r.failed;
        latencies.insert(latencies.end(), r.latencies.begin(),
                         r.latencies.end());
        for (const std::string &b : r.bodies) {
            if (!reference)
                reference = &b;
            else if (b != *reference)
                deterministic = false;
        }
    }
    std::sort(latencies.begin(), latencies.end());

    const double sps =
        wall.count() > 0 ? static_cast<double>(ok) / wall.count() : 0;
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);

    std::printf("  ok=%llu failed=%llu in %.2fs -> %.1f sweeps/s, "
                "deterministic=%s\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(failed), wall.count(),
                sps, deterministic ? "yes" : "NO");
    std::printf("  sweep latency p50=%.1fms p99=%.1fms\n", p50 * 1e3,
                p99 * 1e3);

    front.shutdown();
    coordinator.stop();
    backend1.shutdown();
    backend2.shutdown();

    Json root = Json::object();
    root.set("experiment", "coord-load");
    root.set("backends", 2);
    root.set("connections", connections);
    root.set("sweeps_per_connection", sweeps);
    root.set("points_per_sweep",
             static_cast<std::uint64_t>(names.size()));
    root.set("ok", ok);
    root.set("failed", failed);
    root.set("wall_seconds", wall.count());
    root.set("sweeps_per_sec", sps);
    Json lat = Json::object();
    lat.set("p50_seconds", p50);
    lat.set("p99_seconds", p99);
    root.set("latency", std::move(lat));
    const bool scale_ok = ok >= 100;
    root.set("accept_zero_failures", failed == 0);
    root.set("accept_deterministic", deterministic);
    root.set("accept_scale_100", scale_ok);
    harness::writeJsonReport(jsonPath, root);

    if (failed > 0) {
        std::fprintf(stderr,
                     "FAIL: %llu dropped/short/misordered responses\n",
                     static_cast<unsigned long long>(failed));
        return 1;
    }
    if (!deterministic) {
        std::fprintf(stderr,
                     "FAIL: merged streams were not byte-identical\n");
        return 1;
    }
    if (!scale_ok) {
        std::fprintf(stderr,
                     "FAIL: only %llu ok sweeps (< 100); raise "
                     "--connections/--sweeps\n",
                     static_cast<unsigned long long>(ok));
        return 1;
    }
    std::printf("  PASS: %llu sharded sweeps, zero dropped, "
                "byte-identical merges\n",
                static_cast<unsigned long long>(ok));
    return 0;
}
