/**
 * @file
 * Figure 13 (design ablations — the §3.3 claims, quantified): what the
 * two DIE-IRB design decisions are worth.
 *
 *  (a) duplicate dataflow — paper: forward primary results to BOTH
 *      streams (so the IRB never needs forwarding buses and duplicates
 *      wake as early as primaries); ablation: keep per-stream dataflow
 *      ("own"), i.e. duplicates wait on duplicate producers.
 *  (b) issue bandwidth — paper: the reuse test is folded into wakeup via
 *      the Rdy2 flags, so a hit consumes NO issue slot; ablation: treat
 *      the IRB like a functional unit whose hits occupy issue bandwidth
 *      (the pre-Citron [12] design the paper argues against).
 *
 * Runs on the parallel sweep engine (--jobs N / DIREB_JOBS); emits
 * BENCH_fig13_ablations.json.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

namespace
{

struct Variant
{
    const char *name;
    bool own_dataflow;
    bool hits_burn_slots;
    int issueWidth;
};

const std::vector<Variant> variants = {
    {"paper design", false, false, 8},
    {"dup-own-dataflow", true, false, 8},
    {"hits-burn-issue", false, true, 8},
    {"paper @issue4", false, false, 4},
    {"hits-burn @issue4", false, true, 4},
};

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Figure 13 — DIE-IRB design ablations (§3.3)",
        "primary-fed duplicate wakeup and issue-slot-free reuse hits are "
        "both needed for the full benefit; the IRB-as-functional-unit "
        "alternative wastes issue bandwidth");

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const auto &w : workloads::list()) {
        sweep.add(w.name + "/die", w.name, harness::baseConfig("die"));
        for (const auto &v : variants) {
            Config cfg = harness::baseConfig("die-irb");
            cfg.setBool("dieirb.dup_own_dataflow", v.own_dataflow);
            cfg.setBool("irb.consumes_issue_slot", v.hits_burn_slots);
            cfg.setInt("width.issue", v.issueWidth);
            sweep.add(w.name + "/" + v.name, w.name, std::move(cfg));
        }
    }
    const auto results = sweep.run();

    std::vector<std::string> cols = {"workload", "DIE"};
    for (const auto &v : variants)
        cols.push_back(v.name);
    Table t(cols);

    std::vector<std::vector<double>> ipcs(variants.size());
    Json rows = Json::array();

    std::size_t idx = 0;
    for (const auto &w : workloads::list()) {
        const harness::SimResult &die = harness::requireOk(results[idx++]);
        t.row().cell(w.name).num(die.ipc(), 3);
        Json byVariant = Json::object();
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const harness::SimResult &r =
                harness::requireOk(results[idx++]);
            ipcs[i].push_back(r.ipc());
            t.num(r.ipc(), 3);
            byVariant.set(variants[i].name, r.ipc());
        }
        rows.push(Json::object()
                      .set("workload", w.name)
                      .set("die_ipc", die.ipc())
                      .set("ipc_by_variant", std::move(byVariant)));
    }

    t.row().cell("== avg IPC ==").cell("");
    Json avg = Json::object();
    for (std::size_t i = 0; i < variants.size(); ++i) {
        t.num(harness::mean(ipcs[i]), 3);
        avg.set(variants[i].name, harness::mean(ipcs[i]));
    }

    std::printf("%s\n", t.render().c_str());

    Json root = Json::object();
    root.set("bench", "fig13_ablations");
    root.set("jobs", sweep.jobs());
    root.set("workloads", std::move(rows));
    root.set("avg_ipc", std::move(avg));
    harness::writeJsonReport("BENCH_fig13_ablations.json", root);
    std::printf("wrote BENCH_fig13_ablations.json\n");
    return 0;
}
