/**
 * @file
 * Figure 13 (design ablations — the §3.3 claims, quantified): what the
 * two DIE-IRB design decisions are worth.
 *
 *  (a) duplicate dataflow — paper: forward primary results to BOTH
 *      streams (so the IRB never needs forwarding buses and duplicates
 *      wake as early as primaries); ablation: keep per-stream dataflow
 *      ("own"), i.e. duplicates wait on duplicate producers.
 *  (b) issue bandwidth — paper: the reuse test is folded into wakeup via
 *      the Rdy2 flags, so a hit consumes NO issue slot; ablation: treat
 *      the IRB like a functional unit whose hits occupy issue bandwidth
 *      (the pre-Citron [12] design the paper argues against).
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Table;

namespace
{

struct Variant
{
    const char *name;
    bool own_dataflow;
    bool hits_burn_slots;
    int issueWidth;
};

const std::vector<Variant> variants = {
    {"paper design", false, false, 8},
    {"dup-own-dataflow", true, false, 8},
    {"hits-burn-issue", false, true, 8},
    {"paper @issue4", false, false, 4},
    {"hits-burn @issue4", false, true, 4},
};

} // namespace

int
main()
{
    setQuiet(true);
    harness::banner(
        "Figure 13 — DIE-IRB design ablations (§3.3)",
        "primary-fed duplicate wakeup and issue-slot-free reuse hits are "
        "both needed for the full benefit; the IRB-as-functional-unit "
        "alternative wastes issue bandwidth");

    std::vector<std::string> cols = {"workload", "DIE"};
    for (const auto &v : variants)
        cols.push_back(v.name);
    Table t(cols);

    std::vector<std::vector<double>> ipcs(variants.size());
    for (const auto &w : workloads::list()) {
        const auto die =
            harness::runWorkload(w.name, harness::baseConfig("die"));
        t.row().cell(w.name).num(die.ipc(), 3);
        for (std::size_t i = 0; i < variants.size(); ++i) {
            Config cfg = harness::baseConfig("die-irb");
            cfg.setBool("dieirb.dup_own_dataflow",
                        variants[i].own_dataflow);
            cfg.setBool("irb.consumes_issue_slot",
                        variants[i].hits_burn_slots);
            cfg.setInt("width.issue", variants[i].issueWidth);
            const auto r = harness::runWorkload(w.name, cfg);
            ipcs[i].push_back(r.ipc());
            t.num(r.ipc(), 3);
        }
        std::fflush(stdout);
    }

    t.row().cell("== avg IPC ==").cell("");
    for (std::size_t i = 0; i < variants.size(); ++i)
        t.num(harness::mean(ipcs[i]), 3);

    std::printf("%s\n", t.render().c_str());
    return 0;
}
