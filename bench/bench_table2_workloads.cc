/**
 * @file
 * Table 2 (reconstructed): workload characterisation — dynamic length,
 * instruction mix, branch misprediction behaviour, cache miss rates, base
 * SIE and DIE IPC, and the duplicate-stream reuse rate of each kernel.
 * This is the per-application context for every other figure.
 *
 * The timing runs (SIE/DIE/DIE-IRB per kernel) go through the parallel
 * sweep engine (--jobs N / DIREB_JOBS); the two functional VM passes per
 * kernel are cheap and stay inline. Emits BENCH_table2_workloads.json.
 */

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "vm/vm.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Table 2 — workload characterisation (SPEC2000 stand-ins)",
        "twelve kernels spanning the paper's spectrum: int/fp mix, "
        "branchy vs regular, memory-bound vs ALU-bound, low vs high "
        "operand reuse");

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const auto &w : workloads::list()) {
        sweep.add(w.name + "/sie", w.name, harness::baseConfig("sie"));
        sweep.add(w.name + "/die", w.name, harness::baseConfig("die"));
        sweep.add(w.name + "/die-irb", w.name,
                  harness::baseConfig("die-irb"));
    }
    const auto results = sweep.run();

    Table t({"workload", "mimics", "dyn insts", "%mem", "%branch", "%fp",
             "L1D miss", "SIE IPC", "DIE IPC", "reuse rate"});
    Json rows = Json::array();

    std::size_t idx = 0;
    for (const auto &w : workloads::list()) {
        const Program prog = workloads::build(w.name, 1);
        Vm vm(prog);
        vm.run(50'000'000);
        const auto &c = vm.classCounts();
        const double n = static_cast<double>(vm.instCount());
        const double mem = (c[unsigned(OpClass::MemRead)] +
                            c[unsigned(OpClass::MemWrite)]) / n;
        // Dynamic branch/fp fractions from a dedicated functional pass
        // (branches execute on IntAlu, so classCounts cannot split them).
        std::uint64_t br = 0, fp = 0;
        {
            Vm v2(prog);
            std::uint64_t steps = 0;
            while (!v2.halted() && steps < 50'000'000) {
                const Inst inst = prog.fetch(v2.state().pc);
                if (isControl(inst.op))
                    ++br;
                if (isFpOp(inst.op))
                    ++fp;
                if (!v2.step())
                    break;
                ++steps;
            }
        }
        const double branches = br / n;
        const double fpfrac = fp / n;

        const harness::SimResult &sie = harness::requireOk(results[idx++]);
        const harness::SimResult &die = harness::requireOk(results[idx++]);
        const harness::SimResult &irb = harness::requireOk(results[idx++]);
        const double dl1 =
            sie.stat("core.memhier.l1d.misses") /
            std::max(1.0, sie.stat("core.memhier.l1d.hits") +
                              sie.stat("core.memhier.l1d.misses"));
        const double tests = irb.stat("core.irb.reuse_hits") +
                             irb.stat("core.irb.reuse_misses");
        const double reuse =
            tests > 0 ? irb.stat("core.irb.reuse_hits") / tests : 0.0;

        t.row()
            .cell(w.name)
            .cell(w.mimics)
            .num(n, 0)
            .pct(mem, 1)
            .pct(branches, 1)
            .pct(fpfrac, 1)
            .pct(dl1, 2)
            .num(sie.ipc(), 3)
            .num(die.ipc(), 3)
            .pct(reuse, 1);

        rows.push(Json::object()
                      .set("workload", w.name)
                      .set("mimics", w.mimics)
                      .set("dyn_insts", n)
                      .set("mem_frac", mem)
                      .set("branch_frac", branches)
                      .set("fp_frac", fpfrac)
                      .set("l1d_miss_rate", dl1)
                      .set("sie_ipc", sie.ipc())
                      .set("die_ipc", die.ipc())
                      .set("reuse_rate", reuse));
    }

    std::printf("%s\n", t.render().c_str());

    Json root = Json::object();
    root.set("bench", "table2_workloads");
    root.set("jobs", sweep.jobs());
    root.set("workloads", std::move(rows));
    harness::writeJsonReport("BENCH_table2_workloads.json", root);
    std::printf("wrote BENCH_table2_workloads.json\n");
    return 0;
}
