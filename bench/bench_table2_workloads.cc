/**
 * @file
 * Table 2 (reconstructed): workload characterisation — dynamic length,
 * instruction mix, branch misprediction behaviour, cache miss rates, base
 * SIE and DIE IPC, and the duplicate-stream reuse rate of each kernel.
 * This is the per-application context for every other figure.
 */

#include <cstdio>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "vm/vm.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Table;

int
main()
{
    setQuiet(true);
    harness::banner(
        "Table 2 — workload characterisation (SPEC2000 stand-ins)",
        "twelve kernels spanning the paper's spectrum: int/fp mix, "
        "branchy vs regular, memory-bound vs ALU-bound, low vs high "
        "operand reuse");

    Table t({"workload", "mimics", "dyn insts", "%mem", "%branch", "%fp",
             "L1D miss", "SIE IPC", "DIE IPC", "reuse rate"});

    for (const auto &w : workloads::list()) {
        const Program prog = workloads::build(w.name, 1);
        Vm vm(prog);
        vm.run(50'000'000);
        const auto &c = vm.classCounts();
        const double n = static_cast<double>(vm.instCount());
        const double mem = (c[unsigned(OpClass::MemRead)] +
                            c[unsigned(OpClass::MemWrite)]) / n;
        // Dynamic branch/fp fractions from a dedicated functional pass
        // (branches execute on IntAlu, so classCounts cannot split them).
        std::uint64_t br = 0, fp = 0;
        {
            Vm v2(prog);
            std::uint64_t steps = 0;
            while (!v2.halted() && steps < 50'000'000) {
                const Inst inst = prog.fetch(v2.state().pc);
                if (isControl(inst.op))
                    ++br;
                if (isFpOp(inst.op))
                    ++fp;
                if (!v2.step())
                    break;
                ++steps;
            }
        }
        const double branches = br / n;
        const double fpfrac = fp / n;

        const auto sie =
            harness::runWorkload(w.name, harness::baseConfig("sie"));
        const auto die =
            harness::runWorkload(w.name, harness::baseConfig("die"));
        const auto irb =
            harness::runWorkload(w.name, harness::baseConfig("die-irb"));
        const double dl1 =
            sie.stat("core.memhier.l1d.misses") /
            std::max(1.0, sie.stat("core.memhier.l1d.hits") +
                              sie.stat("core.memhier.l1d.misses"));
        const double tests = irb.stat("core.irb.reuse_hits") +
                             irb.stat("core.irb.reuse_misses");
        const double reuse =
            tests > 0 ? irb.stat("core.irb.reuse_hits") / tests : 0.0;

        t.row()
            .cell(w.name)
            .cell(w.mimics)
            .num(n, 0)
            .pct(mem, 1)
            .pct(branches, 1)
            .pct(fpfrac, 1)
            .pct(dl1, 2)
            .num(sie.ipc(), 3)
            .num(die.ipc(), 3)
            .pct(reuse, 1);
        std::fflush(stdout);
    }

    std::printf("%s\n", t.render().c_str());
    return 0;
}
