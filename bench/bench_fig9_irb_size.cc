/**
 * @file
 * Figure 9 (reconstructed): sensitivity of DIE-IRB to IRB capacity,
 * sweeping 128..8192 entries (direct-mapped). The paper settles on 1024
 * entries; the curve should show diminishing returns near that point for
 * kernels whose hot static footprint fits.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Table;

int
main()
{
    setQuiet(true);
    harness::banner(
        "Figure 9 — DIE-IRB IPC vs IRB size (direct-mapped)",
        "diminishing returns by 1024 entries (the paper's pick); tiny "
        "IRBs forfeit most of the recovery");

    const std::vector<int> sizes = {128, 256, 512, 1024, 2048, 4096, 8192};

    std::vector<std::string> cols = {"workload", "DIE"};
    for (const int s : sizes)
        cols.push_back("IRB-" + std::to_string(s));
    Table t(cols);

    std::vector<std::vector<double>> ipcs(sizes.size());

    // Representative kernels across the reuse spectrum plus a synthetic
    // with a large static footprint (where capacity genuinely binds).
    const std::vector<std::string> apps = {"compress", "parse", "raster",
                                           "neural", "object", "sort"};
    for (const auto &w : apps) {
        const auto die =
            harness::runWorkload(w, harness::baseConfig("die"));
        t.row().cell(w).num(die.ipc(), 3);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            Config cfg = harness::baseConfig("die-irb");
            cfg.setInt("irb.entries", sizes[i]);
            const auto r = harness::runWorkload(w, cfg);
            ipcs[i].push_back(r.ipc());
            t.num(r.ipc(), 3);
        }
        std::fflush(stdout);
    }

    // Synthetic big-footprint program: 200 blocks * ~12 insts ~= 2.4K
    // static instructions, so small IRBs thrash.
    workloads::SyntheticParams sp;
    sp.seed = 5;
    sp.blocks = 200;
    sp.instsPerBlock = 10;
    sp.reuseFraction = 0.7;
    sp.outerIters = 150;
    const Program big = workloads::synthetic(sp);
    const auto die = harness::run(big, harness::baseConfig("die"));
    t.row().cell("synthetic-big").num(die.ipc(), 3);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        Config cfg = harness::baseConfig("die-irb");
        cfg.setInt("irb.entries", sizes[i]);
        const auto r = harness::run(big, cfg);
        t.num(r.ipc(), 3);
    }

    std::printf("%s\n", t.render().c_str());
    return 0;
}
