/**
 * @file
 * Figure 9 (reconstructed): sensitivity of DIE-IRB to IRB capacity,
 * sweeping 128..8192 entries (direct-mapped). The paper settles on 1024
 * entries; the curve should show diminishing returns near that point for
 * kernels whose hot static footprint fits.
 *
 * Runs on the parallel sweep engine (--jobs N / DIREB_JOBS); emits
 * BENCH_fig9_irb_size.json.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Figure 9 — DIE-IRB IPC vs IRB size (direct-mapped)",
        "diminishing returns by 1024 entries (the paper's pick); tiny "
        "IRBs forfeit most of the recovery");

    const std::vector<int> sizes = {128, 256, 512, 1024, 2048, 4096, 8192};

    // Representative kernels across the reuse spectrum plus a synthetic
    // with a large static footprint (where capacity genuinely binds).
    const std::vector<std::string> apps = {"compress", "parse", "raster",
                                           "neural", "object", "sort"};

    // Synthetic big-footprint program: 200 blocks * ~12 insts ~= 2.4K
    // static instructions, so small IRBs thrash.
    workloads::SyntheticParams sp;
    sp.seed = 5;
    sp.blocks = 200;
    sp.instsPerBlock = 10;
    sp.reuseFraction = 0.7;
    sp.outerIters = 150;
    const Program big = workloads::synthetic(sp);

    const auto irbConfig = [&](int entries) {
        Config cfg = harness::baseConfig("die-irb");
        cfg.setInt("irb.entries", entries);
        return cfg;
    };

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const auto &w : apps) {
        sweep.add(w + "/die", w, harness::baseConfig("die"));
        for (const int s : sizes)
            sweep.add(w + "/irb-" + std::to_string(s), w, irbConfig(s));
    }
    sweep.add("synthetic-big/die", big, harness::baseConfig("die"));
    for (const int s : sizes)
        sweep.add("synthetic-big/irb-" + std::to_string(s), big,
                  irbConfig(s));
    const auto results = sweep.run();

    std::vector<std::string> cols = {"workload", "DIE"};
    for (const int s : sizes)
        cols.push_back("IRB-" + std::to_string(s));
    Table t(cols);

    Json rows = Json::array();
    std::size_t idx = 0;
    const auto emitRow = [&](const std::string &name) {
        const harness::SimResult &die = harness::requireOk(results[idx++]);
        t.row().cell(name).num(die.ipc(), 3);
        Json sized = Json::object();
        for (const int s : sizes) {
            const harness::SimResult &r =
                harness::requireOk(results[idx++]);
            t.num(r.ipc(), 3);
            sized.set(std::to_string(s), r.ipc());
        }
        rows.push(Json::object()
                      .set("workload", name)
                      .set("die_ipc", die.ipc())
                      .set("irb_ipc_by_size", std::move(sized)));
    };

    for (const auto &w : apps)
        emitRow(w);
    emitRow("synthetic-big");

    std::printf("%s\n", t.render().c_str());

    Json root = Json::object();
    root.set("bench", "fig9_irb_size");
    root.set("jobs", sweep.jobs());
    root.set("workloads", std::move(rows));
    harness::writeJsonReport("BENCH_fig9_irb_size.json", root);
    std::printf("wrote BENCH_fig9_irb_size.json\n");
    return 0;
}
