/**
 * @file
 * dieirb-serve load generator: drives an in-process Server over real
 * sockets with many concurrent keep-alive connections, each issuing a
 * stream of sequential POST /v1/simulate requests, and reports
 * throughput and client-observed latency percentiles.
 *
 * Every response is checked end to end — HTTP status 200, intact
 * Content-Length framing, parseable JSON body with state "done", and
 * the connection still alive afterwards — so a single dropped or short
 * response (the PR-5 EINTR bug's signature) fails the bench, not just
 * skews a percentile.
 *
 * Acceptance: >= 1000 keep-alive requests total with zero failures.
 *
 * Usage: bench_serve [BENCH_serve.json] [--connections N] [--requests N]
 *   --connections N   concurrent client connections (default 32)
 *   --requests N      requests per connection (default 40)
 */

#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "service/io.hh"
#include "service/server.hh"

using namespace direb;
using harness::Json;

namespace
{

int
connectTo(unsigned short port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * Read one Content-Length-framed response off a keep-alive socket.
 * Returns the HTTP status (0 on a framing/transport failure); the
 * body lands in @p body and pipelined surplus stays in @p carry.
 */
int
readResponse(int fd, std::string &carry, std::string &body,
             bool &server_close)
{
    const auto fill = [fd](std::string &buf) {
        char tmp[16384];
        const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n <= 0)
            return false;
        buf.append(tmp, static_cast<std::size_t>(n));
        return true;
    };

    std::size_t hdrEnd;
    while ((hdrEnd = carry.find("\r\n\r\n")) == std::string::npos) {
        if (!fill(carry))
            return 0;
    }
    std::string headers = carry.substr(0, hdrEnd + 4);
    carry.erase(0, hdrEnd + 4);
    for (char &c : headers)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    const std::size_t sp = headers.find(' ');
    if (sp == std::string::npos)
        return 0;
    const int status = std::atoi(headers.c_str() + sp + 1);
    server_close =
        headers.find("connection: close") != std::string::npos;

    const std::size_t cl = headers.find("content-length:");
    if (cl == std::string::npos)
        return 0;
    const std::size_t want =
        std::strtoul(headers.c_str() + cl + 15, nullptr, 10);
    while (carry.size() < want) {
        if (!fill(carry))
            return 0; // short response: the wire was cut mid-body
    }
    body = carry.substr(0, want);
    carry.erase(0, want);
    return status;
}

struct ClientResult
{
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::vector<double> latencies; //!< seconds, one per ok request
};

ClientResult
runClient(unsigned short port, unsigned requests,
          const std::string &wire)
{
    ClientResult res;
    const int fd = connectTo(port);
    if (fd < 0) {
        res.failed = requests;
        return res;
    }
    std::string carry;
    for (unsigned i = 0; i < requests; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!service::io::writeFull(fd, wire.data(), wire.size())) {
            res.failed += requests - i;
            break;
        }
        std::string body;
        bool serverClose = false;
        const int status = readResponse(fd, carry, body, serverClose);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        bool good = status == 200;
        if (good) {
            try {
                const Json j = Json::parse(body);
                good = j.find("state") &&
                       j.find("state")->asString() == "done";
            } catch (const std::exception &) {
                good = false;
            }
        }
        // A keep-alive connection the server closed early is a dropped
        // connection even if this response itself was well-formed.
        if (serverClose && i + 1 < requests)
            good = false;
        if (good) {
            ++res.ok;
            res.latencies.push_back(dt.count());
        } else {
            ++res.failed;
        }
        if (serverClose)
            break;
    }
    ::close(fd);
    return res;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double idx = p * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(idx + 0.5)];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_serve.json";
    unsigned connections = 32;
    unsigned requests = 40;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--connections" && i + 1 < argc) {
            connections = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (a == "--requests" && i + 1 < argc) {
            requests = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            jsonPath = a;
        }
    }
    fatal_if(connections == 0 || requests == 0,
             "need at least one connection and one request");

    harness::banner("serve-load",
                    "keep-alive HTTP load against the epoll event loop: "
                    "zero dropped or short responses under concurrency");
    setQuiet(true); // no per-request log lines at bench rates

    service::ServerOptions opts;
    opts.port = 0;
    opts.workers = 0; // hardware concurrency
    opts.httpThreads = 16;
    opts.queueDepth = 2 * connections + 16;
    opts.socketTimeoutMs = 120'000;
    opts.idleTimeoutMs = 120'000;
    opts.defaultDeadlineMs = 300'000;
    service::Server server(opts);
    server.start();

    // Small points: the bench measures the connection path, not the
    // simulator, so each request should be milliseconds of work.
    const std::string body =
        "{\"workload\": \"route\", \"max_insts\": 10000, "
        "\"deadline_ms\": 300000, \"cache\": false}";
    const std::string wire =
        "POST /v1/simulate HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;

    std::printf("  %u connections x %u keep-alive requests each "
                "(%u total)\n",
                connections, requests, connections * requests);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    std::vector<ClientResult> results(connections);
    threads.reserve(connections);
    for (unsigned c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            results[c] = runClient(server.port(), requests, wire);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;

    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::vector<double> latencies;
    for (const ClientResult &r : results) {
        ok += r.ok;
        failed += r.failed;
        latencies.insert(latencies.end(), r.latencies.begin(),
                         r.latencies.end());
    }
    std::sort(latencies.begin(), latencies.end());

    const double rps =
        wall.count() > 0 ? static_cast<double>(ok) / wall.count() : 0;
    const double p50 = percentile(latencies, 0.50);
    const double p90 = percentile(latencies, 0.90);
    const double p99 = percentile(latencies, 0.99);
    const double pmax = latencies.empty() ? 0.0 : latencies.back();

    std::printf("  ok=%llu failed=%llu in %.2fs -> %.0f req/s\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(failed), wall.count(),
                rps);
    std::printf("  latency p50=%.1fms p90=%.1fms p99=%.1fms "
                "max=%.1fms\n",
                p50 * 1e3, p90 * 1e3, p99 * 1e3, pmax * 1e3);

    server.shutdown();

    Json root = Json::object();
    root.set("experiment", "serve-load");
    root.set("connections", connections);
    root.set("requests_per_connection", requests);
    root.set("total_requests",
             static_cast<std::uint64_t>(connections) * requests);
    root.set("ok", ok);
    root.set("failed", failed);
    root.set("wall_seconds", wall.count());
    root.set("requests_per_sec", rps);
    Json lat = Json::object();
    lat.set("p50_seconds", p50);
    lat.set("p90_seconds", p90);
    lat.set("p99_seconds", p99);
    lat.set("max_seconds", pmax);
    root.set("latency", std::move(lat));
    const bool scale_ok = ok >= 1000;
    root.set("accept_zero_failures", failed == 0);
    root.set("accept_scale_1000", scale_ok);
    harness::writeJsonReport(jsonPath, root);

    if (failed > 0) {
        std::fprintf(stderr,
                     "FAIL: %llu dropped/short/failed responses\n",
                     static_cast<unsigned long long>(failed));
        return 1;
    }
    if (!scale_ok) {
        std::fprintf(stderr,
                     "FAIL: only %llu ok requests (< 1000); raise "
                     "--connections/--requests\n",
                     static_cast<unsigned long long>(ok));
        return 1;
    }
    std::printf("  PASS: %llu keep-alive requests, zero dropped\n",
                static_cast<unsigned long long>(ok));
    return 0;
}
