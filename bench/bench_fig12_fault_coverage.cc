/**
 * @file
 * Figure 12 (reconstructed — §3.4 redundancy characteristics): fault
 * injection campaign by fault site, for DIE and DIE-IRB.
 *
 * Expected outcome per the paper's analysis: functional-unit faults and
 * single-stream forwarding faults are always caught by the commit check;
 * corrupted IRB entries are caught because the primary copy executed on a
 * real ALU (so the IRB needs no extra protection); the one coverage
 * difference is a fault on the shared forwarding bus (Figure 6(c)) —
 * DIE-IRB forwards primary results to both streams, so an identical
 * corruption of both operand copies escapes, while plain DIE's
 * per-stream forwarding keeps it detectable.
 */

#include <cstdio>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Table;

int
main()
{
    setQuiet(true);
    harness::banner(
        "Figure 12 — fault-injection coverage by site (DIE vs DIE-IRB)",
        "all datapath faults detected; IRB entries need no protection; "
        "only the shared-forwarding case of Figure 6(c) escapes, and only "
        "under DIE-IRB (by design, deemed acceptable in §3.4)");

    Table t({"site", "mode", "injected", "detected", "squashed", "escaped",
             "rewinds", "coverage", "output ok"});

    const std::vector<std::string> apps = {"route", "parse", "raster",
                                           "anneal"};

    for (const char *site : {"fu", "fwd_one", "fwd_both", "irb"}) {
        for (const char *mode : {"die", "die-irb"}) {
            double injected = 0, detected = 0, squashed = 0, escaped = 0,
                   rewinds = 0;
            bool outputs_ok = true;
            for (const auto &w : apps) {
                const Program prog = workloads::build(w, 1);
                Config cfg = harness::baseConfig(mode);
                cfg.set("fault.site", site);
                cfg.setDouble("fault.rate",
                              std::string(site) == "irb" ? 0.01 : 0.0005);
                cfg.setInt("fault.seed", 17);
                const auto faulty = harness::run(prog, cfg);
                const auto clean =
                    harness::run(prog, harness::baseConfig(mode));
                injected += faulty.stat("core.fault.injected");
                detected += faulty.stat("core.fault.detected");
                squashed += faulty.stat("core.fault.squashed");
                escaped += faulty.stat("core.fault.escaped");
                rewinds += faulty.stat("core.rewinds");
                outputs_ok &= faulty.output == clean.output;
            }
            // Coverage = detected / faults that reached a commit check.
            const double reaching = std::max(1.0, detected + escaped);
            t.row()
                .cell(site)
                .cell(mode)
                .num(injected, 0)
                .num(detected, 0)
                .num(squashed, 0)
                .num(escaped, 0)
                .num(rewinds, 0)
                .pct(detected / reaching, 1)
                .cell(outputs_ok ? "yes" : "NO");
            std::fflush(stdout);
        }
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("note: 'irb' faults strike random live entries; those "
                "never consumed by a reuse hit stay dormant (neither "
                "detected nor escaped).\n");
    return 0;
}
