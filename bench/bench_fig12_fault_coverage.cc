/**
 * @file
 * Figure 12 (reconstructed — §3.4 redundancy characteristics): fault
 * injection campaign by fault site, for DIE and DIE-IRB.
 *
 * Expected outcome per the paper's analysis: functional-unit faults and
 * single-stream forwarding faults are always caught by the commit check;
 * corrupted IRB entries are caught because the primary copy executed on a
 * real ALU (so the IRB needs no extra protection); the one coverage
 * difference is a fault on the shared forwarding bus (Figure 6(c)) —
 * DIE-IRB forwards primary results to both streams, so an identical
 * corruption of both operand copies escapes, while plain DIE's
 * per-stream forwarding keeps it detectable.
 *
 * Runs on the parallel sweep engine (--jobs N / DIREB_JOBS); the clean
 * reference run per (mode, app) is simulated once and shared across
 * fault sites. Emits BENCH_fig12_fault_coverage.json.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Figure 12 — fault-injection coverage by site (DIE vs DIE-IRB)",
        "all datapath faults detected; IRB entries need no protection; "
        "only the shared-forwarding case of Figure 6(c) escapes, and only "
        "under DIE-IRB (by design, deemed acceptable in §3.4)");

    const std::vector<std::string> apps = {"route", "parse", "raster",
                                           "anneal"};
    const std::vector<std::string> sites = {"fu", "fwd_one", "fwd_both",
                                            "irb"};
    const std::vector<std::string> modes = {"die", "die-irb"};

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    // Clean references first: one per (mode, app), shared by every site.
    std::map<std::string, std::size_t> cleanIdx;
    for (const auto &mode : modes) {
        for (const auto &w : apps) {
            cleanIdx[mode + "/" + w] = sweep.add(
                "clean/" + mode + "/" + w, w, harness::baseConfig(mode));
        }
    }
    std::map<std::string, std::size_t> faultIdx;
    for (const auto &site : sites) {
        for (const auto &mode : modes) {
            for (const auto &w : apps) {
                Config cfg = harness::baseConfig(mode);
                cfg.set("fault.site", site);
                cfg.setDouble("fault.rate", site == "irb" ? 0.01 : 0.0005);
                cfg.setInt("fault.seed", 17);
                faultIdx[site + "/" + mode + "/" + w] = sweep.add(
                    site + "/" + mode + "/" + w, w, std::move(cfg));
            }
        }
    }
    const auto results = sweep.run();

    Table t({"site", "mode", "injected", "detected", "squashed", "escaped",
             "rewinds", "coverage", "output ok"});
    Json rows = Json::array();

    for (const auto &site : sites) {
        for (const auto &mode : modes) {
            double injected = 0, detected = 0, squashed = 0, escaped = 0,
                   rewinds = 0;
            bool outputs_ok = true;
            for (const auto &w : apps) {
                const harness::SimResult &faulty = harness::requireOk(
                    results[faultIdx.at(site + "/" + mode + "/" + w)]);
                const harness::SimResult &clean = harness::requireOk(
                    results[cleanIdx.at(mode + "/" + w)]);
                injected += faulty.stat("core.fault.injected");
                detected += faulty.stat("core.fault.detected");
                squashed += faulty.stat("core.fault.squashed");
                escaped += faulty.stat("core.fault.escaped");
                rewinds += faulty.stat("core.rewinds");
                outputs_ok &= faulty.output == clean.output;
            }
            // Coverage = detected / faults that reached a commit check.
            const double reaching = std::max(1.0, detected + escaped);
            t.row()
                .cell(site)
                .cell(mode)
                .num(injected, 0)
                .num(detected, 0)
                .num(squashed, 0)
                .num(escaped, 0)
                .num(rewinds, 0)
                .pct(detected / reaching, 1)
                .cell(outputs_ok ? "yes" : "NO");

            rows.push(Json::object()
                          .set("site", site)
                          .set("mode", mode)
                          .set("injected", injected)
                          .set("detected", detected)
                          .set("squashed", squashed)
                          .set("escaped", escaped)
                          .set("rewinds", rewinds)
                          .set("coverage", detected / reaching)
                          .set("outputs_ok", outputs_ok));
        }
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("note: 'irb' faults strike random live entries; those "
                "never consumed by a reuse hit stay dormant (neither "
                "detected nor escaped).\n");

    Json root = Json::object();
    root.set("bench", "fig12_fault_coverage");
    root.set("jobs", sweep.jobs());
    root.set("sites", std::move(rows));
    harness::writeJsonReport("BENCH_fig12_fault_coverage.json", root);
    std::printf("wrote BENCH_fig12_fault_coverage.json\n");
    return 0;
}
