/**
 * @file
 * Figure 11 (reconstructed — §3.1's "simple mechanism that can possibly
 * reduce conflict misses"): IRB organisation ablation on a thrash-prone
 * footprint — plain direct-mapped, direct-mapped + CTR hysteresis (the
 * paper's entry format), 2-way / 4-way set-associative, and direct-mapped
 * with a 16-entry victim buffer.
 *
 * Runs on the parallel sweep engine (--jobs N / DIREB_JOBS); emits
 * BENCH_fig11_conflict_miss.json.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;
using harness::Table;

namespace
{

struct Org
{
    const char *name;
    int assoc;
    int ctr_bits;
    int victims;
};

const std::vector<Org> orgs = {
    {"DM", 1, 0, 0},
    {"DM+CTR (paper)", 1, 2, 0},
    {"2-way", 2, 0, 0},
    {"4-way", 4, 0, 0},
    {"DM+victim16", 1, 0, 16},
};

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    harness::banner(
        "Figure 11 — IRB conflict-miss mechanisms (256-entry IRB)",
        "the CTR field of Figure 4 gives direct-mapped arrays replacement "
        "hysteresis; associativity / a victim buffer are the classical "
        "alternatives. Shrunk to 256 entries so conflicts actually occur");

    std::vector<std::string> cols = {"workload"};
    for (const auto &o : orgs) {
        cols.push_back(std::string(o.name) + " IPC");
        cols.push_back("reuse%");
    }
    Table t(cols);

    // Inputs that actually conflict in 256 entries:
    //  - "alias-2loops": two reuse-heavy hot loops placed exactly one
    //    IRB stride (256 words) apart, so their entries map to the same
    //    direct-mapped sets — the pure conflict-miss case;
    //  - "synthetic-big": a 1000+ instruction loop body — the capacity
    //    case no conflict mechanism can fix;
    //  - two kernels whose loops fit — the no-conflict control group.
    std::vector<std::pair<std::string, Program>> inputs;

    {
        Program p;
        p.name = "alias-2loops";
        const auto reusable_block = [&](unsigned base) {
            p.push(makeI(Opcode::ADDI, base, 0, 7));
            p.push(makeI(Opcode::ADDI, base + 1, 0, 9));
            p.push(makeR(Opcode::ADD, base + 2, base, base + 1));
            p.push(makeR(Opcode::XOR, base + 3, base, base + 1));
            p.push(makeR(Opcode::SUB, base + 2, base + 2, base + 3));
            p.push(makeR(Opcode::AND, base + 3, base + 2, base));
            p.push(makeR(Opcode::OR, base + 2, base + 3, base + 1));
            p.push(makeR(Opcode::ADD, base + 3, base + 2, base));
        };
        p.push(makeI(Opcode::ADDI, 29, 0, 8000)); // iteration counter
        reusable_block(10);                       // loop A: words 1..8
        const std::int32_t to_b =
            257 - static_cast<std::int32_t>(p.text.size());
        p.push(makeJ(Opcode::JAL, 0, to_b));      // word 9 -> word 257
        while (p.text.size() < 257)
            p.push(Inst());                       // unexecuted NOP padding
        reusable_block(18);                       // loop B: words 257..264
        p.push(makeI(Opcode::ADDI, 29, 29, -1));
        const std::int32_t back =
            1 - static_cast<std::int32_t>(p.text.size());
        p.push(makeB(Opcode::BNE, 29, 0, back));  // back to loop A
        p.push(makeI(Opcode::PUTINT, 0, 21, 0));
        p.push(Inst(Opcode::HALT, 0, 0, 0, 0));
        inputs.emplace_back("alias-2loops", std::move(p));
    }

    workloads::SyntheticParams sp;
    sp.seed = 9;
    sp.blocks = 100;
    sp.instsPerBlock = 10;
    sp.reuseFraction = 0.8;
    sp.outerIters = 250;
    inputs.emplace_back("synthetic-big", workloads::synthetic(sp));
    for (const char *w : {"compress", "parse"})
        inputs.emplace_back(w, workloads::build(w, 1));

    harness::Sweep sweep(harness::jobsFromArgs(argc, argv));
    for (const auto &[name, prog] : inputs) {
        for (const auto &o : orgs) {
            Config cfg = harness::baseConfig("die-irb");
            cfg.setInt("irb.entries", 256);
            cfg.setInt("irb.assoc", o.assoc);
            cfg.setInt("irb.ctr_bits", o.ctr_bits);
            cfg.setInt("irb.victim_entries", o.victims);
            sweep.add(name + "/" + o.name, prog, std::move(cfg));
        }
    }
    const auto results = sweep.run();

    std::vector<std::vector<double>> ipcs(orgs.size());
    Json rows = Json::array();

    std::size_t idx = 0;
    for (const auto &[name, prog] : inputs) {
        t.row().cell(name);
        Json byOrg = Json::object();
        for (std::size_t i = 0; i < orgs.size(); ++i) {
            const harness::SimResult &r =
                harness::requireOk(results[idx++]);
            const double tests = r.stat("core.irb.reuse_hits") +
                                 r.stat("core.irb.reuse_misses");
            const double reuse =
                tests > 0 ? r.stat("core.irb.reuse_hits") / tests : 0.0;
            ipcs[i].push_back(r.ipc());
            t.num(r.ipc(), 3).pct(reuse, 1);
            byOrg.set(orgs[i].name, Json::object()
                                        .set("ipc", r.ipc())
                                        .set("reuse_rate", reuse));
        }
        rows.push(Json::object()
                      .set("workload", name)
                      .set("by_org", std::move(byOrg)));
    }

    t.row().cell("== avg IPC ==");
    Json avg = Json::object();
    for (std::size_t i = 0; i < orgs.size(); ++i) {
        t.num(harness::mean(ipcs[i]), 3);
        t.cell("");
        avg.set(orgs[i].name, harness::mean(ipcs[i]));
    }

    std::printf("%s\n", t.render().c_str());

    Json root = Json::object();
    root.set("bench", "fig11_conflict_miss");
    root.set("jobs", sweep.jobs());
    root.set("workloads", std::move(rows));
    root.set("avg_ipc", std::move(avg));
    harness::writeJsonReport("BENCH_fig11_conflict_miss.json", root);
    std::printf("wrote BENCH_fig11_conflict_miss.json\n");
    return 0;
}
