/**
 * @file
 * Component microbenchmarks (google-benchmark): raw operation rates of
 * the building blocks — assembler, functional VM, branch predictors,
 * cache model, IRB lookup/update, and full cycle-level simulation in all
 * three modes. Useful to keep the simulator fast enough for full sweeps.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "branch/predictor.hh"
#include "common/logging.hh"
#include "core/irb.hh"
#include "harness/runner.hh"
#include "mem/cache.hh"
#include "vm/vm.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

void
BM_Assemble(benchmark::State &state)
{
    const std::string src = workloads::source("compress", 1);
    for (auto _ : state) {
        Program p = assemble(src, "bm");
        benchmark::DoNotOptimize(p.text.data());
    }
}
BENCHMARK(BM_Assemble);

void
BM_VmExecute(benchmark::State &state)
{
    const Program prog = workloads::build("anneal", 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        Vm vm(prog);
        vm.run();
        insts += vm.instCount();
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecute);

void
BM_BimodalPredict(benchmark::State &state)
{
    Config cfg;
    cfg.set("bp.kind", "bimodal");
    BranchPredictor bp(cfg);
    const Inst br = makeB(Opcode::BEQ, 1, 2, 4);
    Addr pc = 0x1000;
    for (auto _ : state) {
        const auto p = bp.predict(pc, br);
        benchmark::DoNotOptimize(p.taken);
        bp.update(pc, br, true, pc + 16);
        pc += 4;
    }
}
BENCHMARK(BM_BimodalPredict);

void
BM_TournamentPredict(benchmark::State &state)
{
    Config cfg;
    BranchPredictor bp(cfg);
    const Inst br = makeB(Opcode::BNE, 1, 2, 4);
    Addr pc = 0x1000;
    for (auto _ : state) {
        const auto p = bp.predict(pc, br);
        benchmark::DoNotOptimize(p.taken);
        bp.update(pc, br, (pc >> 2) & 1, pc + 16);
        pc += 4;
    }
}
BENCHMARK(BM_TournamentPredict);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams p;
    p.sizeBytes = 64 * 1024;
    p.assoc = 2;
    p.blockBytes = 32;
    Cache c(p);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false).hit);
        a = (a + 4093) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_IrbLookupUpdate(benchmark::State &state)
{
    Config cfg;
    cfg.setInt("irb.entries", state.range(0));
    Irb irb(cfg);
    Addr pc = 0x1000;
    for (auto _ : state) {
        irb.beginCycle();
        benchmark::DoNotOptimize(irb.lookup(pc).pcHit);
        irb.update(pc, pc, pc + 1, pc + 2);
        pc = 0x1000 + ((pc + 4) & 0xffff);
    }
}
BENCHMARK(BM_IrbLookupUpdate)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_SimulateMode(benchmark::State &state, const char *mode)
{
    setQuiet(true);
    const Program prog = workloads::build("anneal", 1);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        OooCore core(prog, harness::baseConfig(mode));
        const CoreResult r = core.run();
        cycles += r.cycles;
    }
    state.counters["cycle/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_SimulateMode, sie, "sie");
BENCHMARK_CAPTURE(BM_SimulateMode, die, "die");
BENCHMARK_CAPTURE(BM_SimulateMode, die_irb, "die-irb");

} // namespace
