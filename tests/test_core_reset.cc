/**
 * @file
 * Tests for core reuse: OooCore::reset() must make a reused core
 * bit-identical to a freshly constructed one (cycles, statistics
 * snapshot, rendered stats text, program output) across every mode and
 * scheduler backend, including cross-mode resets that add/remove the
 * IRB statistics child. On top of that, the harness-level consumers:
 * CorePool bookkeeping, pooled sweeps matching fresh-construction
 * sweeps, and the content-addressed sweep result cache.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "cpu/ooo_core.hh"
#include "harness/core_pool.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

constexpr std::uint64_t budget = 20'000; //!< keep each run cheap

/** Everything observable from one run. */
struct RunCapture
{
    CoreResult core;
    std::map<std::string, double> stats;
    std::string statsText;
    std::string output;
};

RunCapture
capture(OooCore &core, std::uint64_t max_insts = budget)
{
    RunCapture c;
    c.core = core.run(max_insts);
    c.stats = core.statGroup().snapshot();
    c.statsText = core.statGroup().dump();
    c.output = core.archState().out;
    return c;
}

void
expectIdentical(const RunCapture &a, const RunCapture &b)
{
    EXPECT_EQ(a.core.stop, b.core.stop);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.archInsts, b.core.archInsts);
    EXPECT_EQ(a.core.ruuEntriesCommitted, b.core.ruuEntriesCommitted);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.statsText, b.statsText); // text IS child-order sensitive
    EXPECT_EQ(a.output, b.output);
}

Config
makeConfig(const std::string &mode, const std::string &scheduler)
{
    Config cfg = harness::baseConfig(mode);
    cfg.set("core.scheduler", scheduler);
    return cfg;
}

} // namespace

TEST(CoreReset, RerunBitIdenticalToFreshAllModesAndBackends)
{
    setQuiet(true);
    const Program prog = workloads::build("compress", 1);
    for (const char *mode : {"sie", "die", "die-irb"}) {
        for (const char *sched : {"scan", "ready_list"}) {
            SCOPED_TRACE(std::string(mode) + "/" + sched);
            const Config cfg = makeConfig(mode, sched);

            OooCore fresh(prog, cfg);
            const RunCapture want = capture(fresh);

            OooCore reused(prog, cfg);
            capture(reused);           // first run, discarded
            reused.reset(prog, cfg);   // rebind to the same point
            expectIdentical(want, capture(reused));
        }
    }
}

TEST(CoreReset, ResetToDifferentProgramAndConfig)
{
    setQuiet(true);
    const Program prog1 = workloads::build("compress", 1);
    const Program prog2 = workloads::build("route", 1);
    const Config cfg1 = makeConfig("die-irb", "ready_list");
    Config cfg2 = makeConfig("die", "scan");
    cfg2.set("ruu.size", "64");

    OooCore fresh(prog2, cfg2);
    const RunCapture want = capture(fresh);

    OooCore reused(prog1, cfg1);
    capture(reused);
    reused.reset(prog2, cfg2); // new program, mode, scheduler and size
    expectIdentical(want, capture(reused));
    EXPECT_EQ(reused.params().ruuSize, 64u);
    EXPECT_EQ(reused.irb(), nullptr); // DIE has no reuse buffer
}

TEST(CoreReset, CrossModeResetRestoresStatChildOrder)
{
    setQuiet(true);
    const Program prog = workloads::build("parse", 1);
    const Config sie = makeConfig("sie", "ready_list");
    const Config dieirb = makeConfig("die-irb", "ready_list");

    OooCore fresh_sie(prog, sie);
    const RunCapture want_sie = capture(fresh_sie);
    OooCore fresh_irb(prog, dieirb);
    const RunCapture want_irb = capture(fresh_irb);

    // sie -> die-irb attaches the IRB stats child; back to sie removes
    // it again. Both rendered reports must match fresh cores exactly.
    OooCore core(prog, sie);
    capture(core);
    core.reset(prog, dieirb);
    ASSERT_NE(core.irb(), nullptr);
    expectIdentical(want_irb, capture(core));
    core.reset(prog, sie);
    EXPECT_EQ(core.irb(), nullptr);
    expectIdentical(want_sie, capture(core));
}

TEST(CorePool, ReusesIdleCoresAndCounts)
{
    setQuiet(true);
    const Program prog = workloads::build("compress", 1);
    const Config cfg = makeConfig("die", "ready_list");

    harness::CorePool pool;
    auto a = pool.acquire(prog, cfg);
    EXPECT_EQ(pool.constructions(), 1u);
    EXPECT_EQ(pool.reuses(), 0u);

    // The pool is empty while `a` is out: a second acquire constructs.
    auto b = pool.acquire(prog, cfg);
    EXPECT_EQ(pool.constructions(), 2u);

    pool.release(std::move(a));
    pool.release(std::move(b));
    EXPECT_EQ(pool.idleCount(), 2u);

    auto c = pool.acquire(prog, cfg);
    EXPECT_EQ(pool.constructions(), 2u);
    EXPECT_EQ(pool.reuses(), 1u);
    EXPECT_EQ(pool.idleCount(), 1u);
    pool.release(std::move(c));
}

TEST(CorePool, PooledAndResetCoresMatchFreshAcrossAllModes)
{
    // The SoA pipeline state and the scheduler arena survive reset() with
    // their capacity intact; a single pooled core rebound through every
    // mode must stay byte-identical (stats snapshot, rendered text,
    // program output) to a fresh core in each one.
    setQuiet(true);
    const Program prog = workloads::build("compress", 1);
    harness::CorePool pool;
    for (const char *mode : {"sie", "die", "die-irb"}) {
        SCOPED_TRACE(mode);
        const Config cfg = makeConfig(mode, "ready_list");

        OooCore fresh(prog, cfg);
        const RunCapture want = capture(fresh);

        auto pooled = pool.acquire(prog, cfg);
        expectIdentical(want, capture(*pooled));
        pool.release(std::move(pooled));
    }
    EXPECT_EQ(pool.constructions(), 1u);
    EXPECT_EQ(pool.reuses(), 2u);
}

TEST(CorePool, PooledCoreSurvivesRuuResizeAcrossReuses)
{
    // Rebinding a pooled core to a different ruu.size re-sizes the
    // power-of-two ring and every parallel array; growth and shrink must
    // both land byte-identical to fresh construction (a stale high-water
    // capacity or leftover dependence-arena node would diverge here).
    setQuiet(true);
    const Program prog = workloads::build("route", 1);
    harness::CorePool pool;
    for (const char *ruu : {"128", "16", "256", "32"}) {
        SCOPED_TRACE(std::string("ruu.size=") + ruu);
        Config cfg = makeConfig("die-irb", "ready_list");
        cfg.set("ruu.size", ruu);

        OooCore fresh(prog, cfg);
        const RunCapture want = capture(fresh);

        auto pooled = pool.acquire(prog, cfg);
        expectIdentical(want, capture(*pooled));
        EXPECT_EQ(pooled->params().ruuSize,
                  static_cast<std::size_t>(std::stoul(ruu)));
        pool.release(std::move(pooled));
    }
    EXPECT_EQ(pool.constructions(), 1u);
    EXPECT_EQ(pool.reuses(), 3u);
}

TEST(CorePool, AcquireFailureDoesNotPoolTheCore)
{
    setQuiet(true);
    const Program prog = workloads::build("compress", 1);
    Config bad = makeConfig("die", "ready_list");
    bad.set("ruu.size", "63"); // DIE modes need an even ruu.size

    harness::CorePool pool;
    EXPECT_THROW(pool.acquire(prog, bad), FatalError);
    EXPECT_EQ(pool.idleCount(), 0u);

    // A pooled core that fails to reset() is destroyed, not re-pooled.
    pool.release(pool.acquire(prog, makeConfig("die", "ready_list")));
    ASSERT_EQ(pool.idleCount(), 1u);
    EXPECT_THROW(pool.acquire(prog, bad), FatalError);
    EXPECT_EQ(pool.idleCount(), 0u);
}

TEST(SweepPooling, PooledSweepMatchesFreshConstruction)
{
    setQuiet(true);
    const auto build = [] {
        harness::Sweep sweep(2);
        for (const char *w : {"compress", "route", "parse"}) {
            for (const char *mode : {"sie", "die-irb"}) {
                sweep.add(std::string(w) + "/" + mode, w,
                          harness::baseConfig(mode), 1, budget);
            }
        }
        return sweep;
    };

    harness::Sweep fresh = build();
    fresh.setPooling(false);
    harness::Sweep pooled = build();
    EXPECT_TRUE(pooled.poolingEnabled());

    const auto fa = fresh.run();
    const auto pa = pooled.run();
    ASSERT_EQ(fa.size(), pa.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
        SCOPED_TRACE(fa[i].name);
        EXPECT_EQ(fa[i].status, pa[i].status);
        EXPECT_EQ(fa[i].sim.core.cycles, pa[i].sim.core.cycles);
        EXPECT_EQ(fa[i].sim.stats, pa[i].sim.stats);
        EXPECT_EQ(fa[i].sim.statsText, pa[i].sim.statsText);
        EXPECT_EQ(fa[i].sim.output, pa[i].sim.output);
    }
    EXPECT_EQ(fresh.pool().reuses(), 0u); // pooling was off
    EXPECT_GT(pooled.pool().reuses(), 0u);
    EXPECT_LT(pooled.pool().constructions(), pa.size());
}

TEST(SweepCache, WarmRerunRestoresResultsWithoutSimulating)
{
    setQuiet(true);
    const std::string dir = ::testing::TempDir() + "direb_sweep_cache";
    std::filesystem::remove_all(dir); // stale cache would defeat "cold"

    const auto build = [&dir] {
        harness::Sweep sweep(1);
        for (const char *mode : {"sie", "die", "die-irb"}) {
            Config cfg = harness::baseConfig(mode);
            cfg.set("sweep.cache", dir);
            sweep.add(std::string("compress/") + mode, "compress", cfg, 1,
                      budget);
        }
        // A point that times out is cached too (deterministic outcome).
        Config tiny = harness::baseConfig("die");
        tiny.set("sweep.cache", dir);
        sweep.add("tiny", "route", tiny, 1, 500);
        return sweep;
    };

    const auto cold = build().run();
    for (const auto &r : cold)
        EXPECT_FALSE(r.fromCache) << r.name;
    EXPECT_EQ(cold[3].status, harness::PointStatus::Timeout);

    const auto warm = build().run();
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        SCOPED_TRACE(cold[i].name);
        EXPECT_TRUE(warm[i].fromCache);
        EXPECT_EQ(cold[i].status, warm[i].status);
        EXPECT_EQ(cold[i].error, warm[i].error);
        EXPECT_EQ(cold[i].attempts, warm[i].attempts);
        EXPECT_EQ(cold[i].sim.core.stop, warm[i].sim.core.stop);
        EXPECT_EQ(cold[i].sim.core.cycles, warm[i].sim.core.cycles);
        EXPECT_EQ(cold[i].sim.core.archInsts, warm[i].sim.core.archInsts);
        EXPECT_EQ(cold[i].sim.core.ruuEntriesCommitted,
                  warm[i].sim.core.ruuEntriesCommitted);
        EXPECT_DOUBLE_EQ(cold[i].sim.core.ipc, warm[i].sim.core.ipc);
        EXPECT_EQ(cold[i].sim.stats, warm[i].sim.stats); // exact doubles
        EXPECT_EQ(cold[i].sim.statsText, warm[i].sim.statsText);
        EXPECT_EQ(cold[i].sim.output, warm[i].sim.output);
    }
}

TEST(SweepCache, KeyTracksProgramAndConfig)
{
    setQuiet(true);
    const std::string dir = ::testing::TempDir() + "direb_sweep_cache_key";
    std::filesystem::remove_all(dir);

    const auto run_one = [&dir](const char *workload, const char *ruu) {
        harness::Sweep sweep(1);
        Config cfg = harness::baseConfig("die");
        cfg.set("sweep.cache", dir);
        if (ruu != nullptr)
            cfg.set("ruu.size", ruu);
        sweep.add("pt", workload, cfg, 1, budget);
        return sweep.run().at(0);
    };

    EXPECT_FALSE(run_one("compress", nullptr).fromCache); // cold
    EXPECT_TRUE(run_one("compress", nullptr).fromCache);  // warm
    // A different config or program hashes to a different entry.
    const auto other_cfg = run_one("compress", "64");
    EXPECT_FALSE(other_cfg.fromCache);
    const auto other_prog = run_one("route", nullptr);
    EXPECT_FALSE(other_prog.fromCache);
}

TEST(SweepCache, CorruptEntryFallsBackToSimulation)
{
    setQuiet(true);
    const std::string dir =
        ::testing::TempDir() + "direb_sweep_cache_corrupt";
    std::filesystem::remove_all(dir);

    const auto run_one = [&dir] {
        harness::Sweep sweep(1);
        Config cfg = harness::baseConfig("sie");
        cfg.set("sweep.cache", dir);
        sweep.add("pt", "compress", cfg, 1, budget);
        return sweep.run().at(0);
    };

    const auto cold = run_one();
    ASSERT_FALSE(cold.fromCache);

    // Truncate every cache file in the directory to garbage.
    std::vector<std::string> files;
    for (const auto &ent : std::filesystem::directory_iterator(dir))
        files.push_back(ent.path().string());
    ASSERT_FALSE(files.empty());
    for (const auto &f : files) {
        std::ofstream out(f, std::ios::trunc);
        out << "{ not json";
    }

    const auto rerun = run_one();
    EXPECT_FALSE(rerun.fromCache); // corrupt entry was ignored
    EXPECT_EQ(cold.sim.core.cycles, rerun.sim.core.cycles);

    const auto warm = run_one(); // the rerun repaired the cache
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(cold.sim.statsText, warm.sim.statsText);
}
