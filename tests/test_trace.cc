/**
 * @file
 * Tests for the pipeline event-trace subsystem: ring-buffer semantics,
 * per-instruction lifecycle ordering, stall-attribution accounting
 * (per stage, sum == cycles x width with nothing unattributed), and the
 * Konata / Chrome-trace exporters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "cpu/ooo_core.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "trace/export.hh"
#include "trace/stall.hh"
#include "trace/trace.hh"

using namespace direb;

namespace
{

const char *worker = R"(
.text
        li x5, 0
        li x6, 0
loop:   addi x5, x5, 1
        mul x7, x5, x5
        add x6, x6, x7
        li x8, 500
        blt x5, x8, loop
        putint x6
        halt
)";

Config
tracedConfig(const std::string &mode)
{
    Config cfg = harness::baseConfig(mode);
    cfg.set("trace.enabled", "true");
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Per-seq cycle of each lifecycle kind, commit-reaching seqs only. */
struct Lifecycle
{
    std::map<trace::Kind, Cycle> at;
    bool committed = false;
};

std::map<InstSeq, Lifecycle>
lifecycles(const trace::Tracer &t)
{
    std::map<InstSeq, Lifecycle> out;
    for (const trace::Event &e : t.events()) {
        if (e.seq == invalidSeq)
            continue;
        Lifecycle &lc = out[e.seq];
        lc.at[e.kind] = e.cycle;
        lc.committed |= e.kind == trace::Kind::Commit;
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

TEST(TracerRing, OverwritesOldestAndCountsDrops)
{
    trace::Tracer t(4);
    EXPECT_EQ(t.capacity(), 4u);
    for (std::uint64_t i = 0; i < 6; ++i) {
        t.beginCycle(i);
        t.record(trace::Kind::Fetch, i + 1, 0x1000 + 4 * i, false, Inst{});
    }
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    EXPECT_EQ(t.recorded(), t.dropped() + t.size());

    // Oldest-first readout covers the *tail* of the run: seqs 3..6.
    const auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    for (std::size_t i = 0; i < evs.size(); ++i) {
        EXPECT_EQ(evs[i].seq, i + 3);
        EXPECT_EQ(evs[i].cycle, i + 2);
    }
}

TEST(TracerRing, ZeroLimitRejected)
{
    EXPECT_THROW(trace::Tracer t(0), FatalError);
}

TEST(TracerRing, LimitBoundsLiveEventsEndToEnd)
{
    Config cfg = tracedConfig("die-irb");
    cfg.set("trace.limit", "64");
    const Program prog = assemble(worker, "t"); // core keeps a reference
    OooCore core(prog, cfg);
    core.run();

    ASSERT_NE(core.tracer(), nullptr);
    const trace::Tracer &t = *core.tracer();
    EXPECT_EQ(t.capacity(), 64u);
    EXPECT_EQ(t.size(), 64u); // a real run records far more than 64
    EXPECT_GT(t.dropped(), 0u);
    EXPECT_EQ(t.recorded(), t.dropped() + t.size());
}

TEST(TracerRing, DisabledByDefault)
{
    const Program prog = assemble(worker, "t");
    const Config cfg = harness::baseConfig("die-irb");
    OooCore core(prog, cfg);
    core.run();
    EXPECT_EQ(core.tracer(), nullptr);
    // No trace stats group either.
    const auto snap = core.statGroup().snapshot();
    EXPECT_EQ(snap.count("core.trace.recorded"), 0u);
}

// ---------------------------------------------------------------------------
// Lifecycle event ordering
// ---------------------------------------------------------------------------

TEST(TraceEvents, LifecycleStagesAreOrdered)
{
    const Program prog = assemble(worker, "t");
    for (const char *mode : {"sie", "die", "die-irb"}) {
        const Config cfg = tracedConfig(mode);
        OooCore core(prog, cfg);
        core.run();
        ASSERT_NE(core.tracer(), nullptr) << mode;

        const auto lcs = lifecycles(*core.tracer());
        ASSERT_GT(lcs.size(), 100u) << mode;

        unsigned committed = 0;
        for (const auto &[seq, lc] : lcs) {
            if (!lc.committed)
                continue;
            ++committed;
            // fetch <= dispatch <= issue <= complete <= commit wherever
            // the stage was recorded (reuse-hit duplicates skip the FU,
            // so Issue may be absent for them).
            Cycle prev = 0;
            for (const auto kind :
                 {trace::Kind::Fetch, trace::Kind::Dispatch,
                  trace::Kind::Issue, trace::Kind::Complete,
                  trace::Kind::Commit}) {
                const auto it = lc.at.find(kind);
                if (it == lc.at.end())
                    continue;
                EXPECT_GE(it->second, prev)
                    << mode << " seq " << seq << " kind "
                    << trace::kindName(kind);
                prev = it->second;
            }
        }
        EXPECT_GT(committed, 100u) << mode;
    }
}

TEST(TraceEvents, DualStreamsShareNoSeqs)
{
    const Program prog = assemble(worker, "t");
    const Config cfg = tracedConfig("die");
    OooCore core(prog, cfg);
    core.run();
    ASSERT_NE(core.tracer(), nullptr);

    // A seq is either always primary or always duplicate across its
    // events — the streams get their own RUU entries and seqs.
    std::map<InstSeq, bool> stream;
    bool saw_dup = false;
    for (const trace::Event &e : core.tracer()->events()) {
        if (e.seq == invalidSeq)
            continue;
        const auto it = stream.find(e.seq);
        if (it == stream.end())
            stream[e.seq] = e.dup;
        else
            EXPECT_EQ(it->second, e.dup) << "seq " << e.seq;
        saw_dup |= e.dup;
    }
    EXPECT_TRUE(saw_dup);
}

TEST(TraceEvents, IrbEventsAppearInDieIrb)
{
    const Program prog = assemble(worker, "t");
    const Config cfg = tracedConfig("die-irb");
    OooCore core(prog, cfg);
    core.run();
    ASSERT_NE(core.tracer(), nullptr);

    unsigned lookups = 0, hits = 0, misses = 0, updates = 0;
    for (const trace::Event &e : core.tracer()->events()) {
        lookups += e.kind == trace::Kind::IrbLookup;
        hits += e.kind == trace::Kind::IrbReuseHit;
        misses += e.kind == trace::Kind::IrbReuseMiss;
        updates += e.kind == trace::Kind::IrbUpdate;
    }
    EXPECT_GT(lookups, 0u);
    EXPECT_GT(hits, 0u);
    EXPECT_GT(misses, 0u);
    EXPECT_GT(updates, 0u);
}

// ---------------------------------------------------------------------------
// Stall attribution
// ---------------------------------------------------------------------------

TEST(StallAccountDeathTest, ReasonTablesAreClosed)
{
    trace::StallAccount acc;
    acc.init(8, 8, 8, 8);
    acc.beginCycle();
    // A fetch-only reason on the commit stage is an accounting bug.
    EXPECT_DEATH(acc.blame(trace::StallStage::Commit,
                           trace::StallReason::IcacheMiss),
                 "closed set");
}

TEST(StallAccount, ChargesSumToWidthPerCycle)
{
    trace::StallAccount acc;
    acc.init(4, 4, 4, 4);
    acc.beginCycle();
    acc.busy(trace::StallStage::Issue, 3);
    acc.blame(trace::StallStage::Issue, trace::StallReason::OperandWait);
    acc.endCycle();
    EXPECT_EQ(acc.value(trace::StallStage::Issue,
                        trace::StallReason::Busy), 3u);
    EXPECT_EQ(acc.value(trace::StallStage::Issue,
                        trace::StallReason::OperandWait), 1u);
    // Untouched stages charge their full width to Unattributed.
    EXPECT_EQ(acc.value(trace::StallStage::Fetch,
                        trace::StallReason::Unattributed), 4u);
}

TEST(StallAccount, PerModeTotalsCoverEverySlot)
{
    // The headline invariant: for every pipeline stage, the stall ledger
    // accounts for exactly cycles x width slots, with no cycle left
    // unattributed — every bubble has a named reason.
    for (const char *mode : {"sie", "die", "die-irb"}) {
        const auto r =
            harness::run(assemble(worker, "t"), harness::baseConfig(mode));
        const double slots = static_cast<double>(r.core.cycles) * 8;
        for (const char *stage :
             {"fetch", "dispatch", "issue", "commit"}) {
            const std::string prefix =
                std::string("core.stall.") + stage + ".";
            double sum = 0;
            for (const auto &[name, value] : r.stats)
                if (name.compare(0, prefix.size(), prefix) == 0)
                    sum += value;
            EXPECT_EQ(sum, slots) << mode << " " << stage;
            const auto un = r.stats.find(prefix + "unattributed");
            ASSERT_NE(un, r.stats.end()) << mode << " " << stage;
            EXPECT_EQ(un->second, 0.0) << mode << " " << stage;
        }
    }
}

TEST(StallAccount, RewindChargedUnderInjection)
{
    Config cfg = harness::baseConfig("die");
    cfg.set("fault.site", "fu");
    cfg.setDouble("fault.rate", 0.002);
    cfg.setInt("fault.seed", 7);
    const auto r = harness::run(assemble(worker, "t"), cfg);
    EXPECT_GT(r.stat("core.rewinds"), 0.0);
    EXPECT_GT(r.stat("core.stall.commit.rewind"), 0.0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(TraceExport, KonataAndChromeFilesAreWellFormed)
{
    Config cfg = tracedConfig("die-irb");
    cfg.set("trace.path", "test_trace_out.trace");
    const auto r = harness::run(assemble(worker, "t"), cfg);
    EXPECT_GT(r.core.archInsts, 0u);

    const std::string konata = slurp("test_trace_out.trace");
    EXPECT_EQ(konata.rfind("O3PipeView:fetch:", 0), 0u);
    EXPECT_NE(konata.find(":retire:"), std::string::npos);
    EXPECT_NE(konata.find("(dup)"), std::string::npos);

    const harness::Json chrome =
        harness::Json::parse(slurp("test_trace_out.trace.json"));
    const harness::Json *events = chrome.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GT(events->size(), 0u);
    // Spot-check shape: every event has a phase and a name.
    for (std::size_t i = 0; i < std::min<std::size_t>(events->size(), 50);
         ++i) {
        const harness::Json &e = events->at(i);
        EXPECT_NE(e.find("ph"), nullptr);
        EXPECT_NE(e.find("name"), nullptr);
    }

    std::remove("test_trace_out.trace");
    std::remove("test_trace_out.trace.json");
}

TEST(TraceExport, FormatSelectsExporters)
{
    Config cfg = tracedConfig("die-irb");
    cfg.set("trace.path", "test_trace_only.json");
    cfg.set("trace.format", "chrome");
    harness::run(assemble(worker, "t"), cfg);
    const harness::Json chrome =
        harness::Json::parse(slurp("test_trace_only.json"));
    EXPECT_NE(chrome.find("traceEvents"), nullptr);
    std::remove("test_trace_only.json");
}
