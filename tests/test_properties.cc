/**
 * @file
 * Property-based tests: randomized synthetic programs swept across seeds
 * and machine configurations, checking the invariants that define the
 * system — architectural equivalence of all modes, SIE >= DIE-IRB >= DIE
 * ordering on ALU-bound code, checker coverage, monotonicity in resources,
 * and reuse-rate monotonicity.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;
using workloads::SyntheticParams;

namespace
{

SyntheticParams
paramsForSeed(std::uint64_t seed)
{
    Rng rng(seed * 7919 + 1);
    SyntheticParams sp;
    sp.seed = seed;
    sp.blocks = 16 + static_cast<unsigned>(rng.below(48));
    sp.instsPerBlock = 4 + static_cast<unsigned>(rng.below(8));
    sp.outerIters = 300;
    sp.fpFraction = rng.uniform() * 0.3;
    sp.memFraction = rng.uniform() * 0.4;
    sp.branchFraction = rng.uniform() * 0.3;
    sp.reuseFraction = rng.uniform();
    return sp;
}

class SyntheticSeeds : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

} // namespace

TEST_P(SyntheticSeeds, AllModesArchitecturallyEquivalent)
{
    const Program p = workloads::synthetic(paramsForSeed(GetParam()));
    Vm vm(p);
    ASSERT_EQ(vm.run(50'000'000), StopReason::Halted);
    for (const char *mode : {"sie", "die", "die-irb"}) {
        const auto r = harness::run(p, harness::baseConfig(mode));
        EXPECT_EQ(r.core.stop, StopReason::Halted) << mode;
        EXPECT_EQ(r.output, vm.state().out) << mode;
        EXPECT_EQ(r.core.archInsts, vm.instCount()) << mode;
    }
}

TEST_P(SyntheticSeeds, ModeOrderingHolds)
{
    const Program p = workloads::synthetic(paramsForSeed(GetParam()));
    const auto sie = harness::run(p, harness::baseConfig("sie"));
    const auto die = harness::run(p, harness::baseConfig("die"));
    const auto irb = harness::run(p, harness::baseConfig("die-irb"));
    // SIE is an upper bound; DIE-IRB must never be meaningfully worse
    // than DIE (small slack for second-order timing interactions).
    EXPECT_LE(die.ipc(), sie.ipc() * 1.001);
    EXPECT_LE(irb.ipc(), sie.ipc() * 1.001);
    EXPECT_GE(irb.ipc(), die.ipc() * 0.97);
}

TEST_P(SyntheticSeeds, CheckerCoversEveryCommit)
{
    const Program p = workloads::synthetic(paramsForSeed(GetParam()));
    for (const char *mode : {"die", "die-irb"}) {
        const auto r = harness::run(p, harness::baseConfig(mode));
        EXPECT_EQ(r.stat("core.checker.checks"),
                  static_cast<double>(r.core.archInsts))
            << mode;
        EXPECT_EQ(r.stat("core.checker.mismatches"), 0.0) << mode;
    }
}

TEST_P(SyntheticSeeds, MoreAlusNeverHurtDie)
{
    const Program p = workloads::synthetic(paramsForSeed(GetParam()));
    Config base = harness::baseConfig("die");
    Config boosted = harness::baseConfig("die");
    boosted.setInt("fu.intalu", 8);
    boosted.setInt("fu.intmul", 4);
    boosted.setInt("fu.fpadd", 4);
    boosted.setInt("fu.fpmul", 2);
    const auto rb = harness::run(p, base);
    const auto rx = harness::run(p, boosted);
    EXPECT_GE(rx.ipc(), rb.ipc() * 0.995);
}

TEST_P(SyntheticSeeds, FaultInjectionNeverCorruptsOutput)
{
    const Program p = workloads::synthetic(paramsForSeed(GetParam()));
    Config cfg = harness::baseConfig("die-irb");
    cfg.set("fault.site", "fu");
    cfg.setDouble("fault.rate", 0.001);
    cfg.setInt("fault.seed", GetParam() + 1);
    const auto faulty = harness::run(p, cfg);
    const auto clean = harness::run(p, harness::baseConfig("die-irb"));
    EXPECT_EQ(faulty.output, clean.output);
    EXPECT_EQ(faulty.stat("core.fault.escaped"), 0.0);
    EXPECT_GE(faulty.core.cycles, clean.core.cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Sweep properties (single tests over a dimension)
// ---------------------------------------------------------------------------

TEST(PropertySweep, ReuseRateTracksKnobMonotonically)
{
    setQuiet(true);
    double prev = -1.0;
    for (int step = 0; step <= 4; ++step) {
        SyntheticParams sp;
        sp.seed = 42;
        sp.reuseFraction = step / 4.0;
        sp.outerIters = 400;
        const Program p = workloads::synthetic(sp);
        const auto r = harness::run(p, harness::baseConfig("die-irb"));
        const double tests = r.stat("core.irb.reuse_hits") +
                             r.stat("core.irb.reuse_misses");
        const double rate =
            tests > 0 ? r.stat("core.irb.reuse_hits") / tests : 0.0;
        EXPECT_GE(rate, prev - 0.02) << "step " << step;
        prev = rate;
    }
}

TEST(PropertySweep, DieIrbGainGrowsWithReuse)
{
    setQuiet(true);
    double prev_gain = -1.0;
    for (const double reuse : {0.0, 0.5, 1.0}) {
        SyntheticParams sp;
        sp.seed = 7;
        sp.reuseFraction = reuse;
        sp.outerIters = 500;
        const Program p = workloads::synthetic(sp);
        const auto die = harness::run(p, harness::baseConfig("die"));
        const auto irb = harness::run(p, harness::baseConfig("die-irb"));
        const double gain = irb.ipc() / die.ipc();
        EXPECT_GE(gain, prev_gain - 0.03);
        prev_gain = gain;
    }
    EXPECT_GT(prev_gain, 1.2); // full reuse must yield a solid speedup
}

TEST(PropertySweep, IrbSizeMonotoneOnLargeFootprint)
{
    setQuiet(true);
    // A program with many static blocks: bigger IRBs keep more of them.
    SyntheticParams sp;
    sp.seed = 3;
    sp.blocks = 120;
    sp.instsPerBlock = 10;
    sp.reuseFraction = 0.8;
    sp.outerIters = 200;
    const Program p = workloads::synthetic(sp);
    double prev = -1.0;
    for (const int entries : {64, 256, 1024, 4096}) {
        Config cfg = harness::baseConfig("die-irb");
        cfg.setInt("irb.entries", entries);
        const auto r = harness::run(p, cfg);
        const double hits = r.stat("core.irb.reuse_hits");
        EXPECT_GE(hits, prev * 0.98);
        prev = hits;
    }
}

TEST(PropertySweep, WidthScalingMonotoneForSie)
{
    setQuiet(true);
    SyntheticParams sp;
    sp.seed = 11;
    sp.outerIters = 400;
    const Program p = workloads::synthetic(sp);
    double prev = 0.0;
    for (const int width : {2, 4, 8}) {
        Config cfg = harness::baseConfig("sie");
        cfg.setInt("width.fetch", width);
        cfg.setInt("width.decode", width);
        cfg.setInt("width.issue", width);
        cfg.setInt("width.commit", width);
        const auto r = harness::run(p, cfg);
        EXPECT_GE(r.ipc(), prev * 0.98);
        prev = r.ipc();
    }
}

TEST(PropertySweep, RedirectPenaltyCostsCycles)
{
    setQuiet(true);
    SyntheticParams sp;
    sp.seed = 13;
    sp.branchFraction = 0.5;
    sp.outerIters = 500;
    const Program p = workloads::synthetic(sp);
    Config fast = harness::baseConfig("sie");
    Config slow = harness::baseConfig("sie");
    slow.setInt("redirect.penalty", 12);
    const auto rf = harness::run(p, fast);
    const auto rs = harness::run(p, slow);
    EXPECT_GE(rs.core.cycles, rf.core.cycles);
}
