/**
 * @file
 * Tests for the temporal-redundancy machinery: checker semantics, fault
 * injection at each site of §3.4, detection + rewind behaviour, the
 * coverage difference between DIE and DIE-IRB under shared-forwarding
 * faults, and architectural integrity across rewinds.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "core/redundancy.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

const char *worker = R"(
.text
        li x5, 0
        li x6, 0
loop:   addi x5, x5, 1
        mul x7, x5, x5
        add x6, x6, x7
        li x8, 2000
        blt x5, x8, loop
        putint x6
        halt
)";

harness::SimResult
runFaulty(const std::string &mode, const std::string &site, double rate,
          const char *src = worker)
{
    Config cfg = harness::baseConfig(mode);
    cfg.set("fault.site", site);
    cfg.setDouble("fault.rate", rate);
    cfg.setInt("fault.seed", 7);
    const Program prog = assemble(src, "f");
    return harness::run(prog, cfg);
}

} // namespace

TEST(Checker, ComparesValues)
{
    Checker c;
    EXPECT_TRUE(c.check(5, 5));
    EXPECT_FALSE(c.check(5, 6));
    EXPECT_EQ(c.checks(), 2u);
    EXPECT_EQ(c.mismatches(), 1u);
}

TEST(FaultSites, NamesRoundTrip)
{
    for (const auto s : {FaultSite::None, FaultSite::Fu, FaultSite::FwdOne,
                         FaultSite::FwdBoth, FaultSite::Irb}) {
        EXPECT_EQ(faultSiteFromName(faultSiteName(s)), s);
    }
    EXPECT_THROW(faultSiteFromName("gamma-ray"), FatalError);
}

TEST(FaultInjector, DisabledNeverStrikes)
{
    Config cfg;
    FaultInjector inj(cfg);
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.strike());
}

TEST(FaultInjector, RateRoughlyCalibrated)
{
    Config cfg;
    cfg.set("fault.site", "fu");
    cfg.setDouble("fault.rate", 0.25);
    FaultInjector inj(cfg);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += inj.strike();
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
    EXPECT_EQ(inj.injected(), static_cast<std::uint64_t>(hits));
}

TEST(FaultInjector, BadRateRejected)
{
    Config cfg;
    cfg.setDouble("fault.rate", 1.5);
    EXPECT_THROW(FaultInjector inj(cfg), FatalError);
}

// ---------------------------------------------------------------------------
// End-to-end injection
// ---------------------------------------------------------------------------

TEST(FaultEnd2End, CleanRunHasNoMismatches)
{
    const auto r = runFaulty("die", "none", 0.0);
    EXPECT_EQ(r.stat("core.checker.mismatches"), 0.0);
    EXPECT_EQ(r.stat("core.fault.injected"), 0.0);
}

TEST(FaultEnd2End, FuFaultsAreDetectedInDie)
{
    const auto r = runFaulty("die", "fu", 0.001);
    EXPECT_GT(r.stat("core.fault.injected"), 0.0);
    EXPECT_GT(r.stat("core.fault.detected"), 0.0);
    EXPECT_EQ(r.stat("core.fault.escaped"), 0.0);
    // Detection == rewind in this design.
    EXPECT_EQ(r.stat("core.rewinds"), r.stat("core.fault.detected"));
}

TEST(FaultEnd2End, ProgramOutputSurvivesRewinds)
{
    const auto clean = runFaulty("die", "none", 0.0);
    const auto faulty = runFaulty("die", "fu", 0.002);
    EXPECT_GT(faulty.stat("core.rewinds"), 0.0);
    EXPECT_EQ(faulty.output, clean.output);
    EXPECT_EQ(faulty.core.archInsts, clean.core.archInsts);
}

TEST(FaultEnd2End, RewindsCostCycles)
{
    const auto clean = runFaulty("die", "none", 0.0);
    const auto faulty = runFaulty("die", "fu", 0.005);
    EXPECT_GT(faulty.core.cycles, clean.core.cycles);
}

TEST(FaultEnd2End, FuFaultsAreDetectedInDieIrb)
{
    const auto r = runFaulty("die-irb", "fu", 0.001);
    EXPECT_GT(r.stat("core.fault.detected"), 0.0);
    EXPECT_EQ(r.stat("core.fault.escaped"), 0.0);
}

TEST(FaultEnd2End, SingleStreamForwardingFaultsDetectedEverywhere)
{
    for (const char *mode : {"die", "die-irb"}) {
        const auto r = runFaulty(mode, "fwd_one", 0.001);
        EXPECT_GT(r.stat("core.fault.injected"), 0.0) << mode;
        EXPECT_EQ(r.stat("core.fault.escaped"), 0.0) << mode;
    }
}

TEST(FaultEnd2End, SharedForwardingFaultsEscapeOnlyInDieIrb)
{
    // Figure 6(c): DIE-IRB forwards primary results to both streams on
    // one bus, so an identical corruption of both copies passes the
    // checker. Plain DIE keeps per-stream forwarding: the same fault
    // model corrupts one copy and is caught.
    const auto die = runFaulty("die", "fwd_both", 0.002);
    EXPECT_EQ(die.stat("core.fault.escaped"), 0.0);
    EXPECT_GT(die.stat("core.fault.detected"), 0.0);

    const auto irb = runFaulty("die-irb", "fwd_both", 0.002);
    EXPECT_GT(irb.stat("core.fault.escaped"), 0.0);
}

TEST(FaultEnd2End, IrbEntryCorruptionIsDetected)
{
    // Corrupted IRB entries feed duplicates a wrong "result"; the primary
    // executed on a real ALU, so the commit check must fire (the paper's
    // argument that the IRB needs no extra protection).
    const char *reuse_heavy = R"(
.text
        li x5, 3000
loop:   li x10, 7
        li x11, 9
        add x12, x10, x11
        xor x13, x10, x11
        addi x5, x5, -1
        bnez x5, loop
        putint x12
        halt
)";
    const auto r = runFaulty("die-irb", "irb", 0.05, reuse_heavy);
    EXPECT_GT(r.stat("core.fault.injected"), 0.0);
    EXPECT_GT(r.stat("core.fault.detected"), 0.0);
    EXPECT_EQ(r.stat("core.fault.escaped"), 0.0);
    // Output still exact.
    EXPECT_NE(r.output.find("16"), std::string::npos);
}

TEST(FaultEnd2End, AccountingBalances)
{
    const auto r = runFaulty("die", "fu", 0.002);
    const double injected = r.stat("core.fault.injected");
    const double resolved = r.stat("core.fault.detected") +
                            r.stat("core.fault.escaped") +
                            r.stat("core.fault.squashed");
    // Everything injected is eventually detected, squashed with the wrong
    // path / a rewind, or (never, for fu) escapes; a few can be in flight
    // at halt.
    EXPECT_LE(resolved, injected);
    EXPECT_GE(resolved, injected * 0.9);
}

TEST(FaultEnd2End, KernelSurvivesInjectionCampaign)
{
    Config cfg = harness::baseConfig("die-irb");
    cfg.set("fault.site", "fu");
    cfg.setDouble("fault.rate", 0.0005);
    const Program prog = workloads::build("route", 1);
    const auto faulty = harness::run(prog, cfg);
    const auto clean =
        harness::run(prog, harness::baseConfig("die-irb"));
    EXPECT_EQ(faulty.output, clean.output);
    EXPECT_GT(faulty.stat("core.rewinds"), 0.0);
}
