/**
 * @file
 * Tests for the out-of-order core in SIE (baseline) mode: architectural
 * correctness against the functional VM, pipeline timing properties,
 * branch misprediction recovery, wrong-path containment, and resource
 * limit behaviour.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/runner.hh"

using namespace direb;

namespace
{

harness::SimResult
runSie(const std::string &src, Config cfg = harness::baseConfig("sie"))
{
    const Program prog = assemble(src, "t");
    return harness::run(prog, cfg);
}

const char *sumLoop = R"(
.text
        li x5, 0
        li x6, 0
loop:   addi x5, x5, 1
        add x6, x6, x5
        li x7, 1000
        blt x5, x7, loop
        putint x6
        halt
)";

} // namespace

TEST(CoreSie, MatchesVmOnSimplePrograms)
{
    const Program prog = assemble(sumLoop, "sum");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("sie"));
    EXPECT_EQ(err, "") << err;
}

TEST(CoreSie, HaltStopsWithCorrectCount)
{
    const auto r = runSie(".text\nli x5, 1\nli x6, 2\nhalt\n");
    EXPECT_EQ(r.core.stop, StopReason::Halted);
    EXPECT_EQ(r.core.archInsts, 3u);
}

TEST(CoreSie, OutputMatchesProgram)
{
    const auto r = runSie(sumLoop);
    EXPECT_EQ(r.output, "500500\n");
}

TEST(CoreSie, IpcAboveOneOnIlpCode)
{
    // Eight independent chains: should sustain well above 1 IPC.
    const auto r = runSie(R"(
.text
        li x5, 2000
loop:   addi x10, x10, 1
        addi x11, x11, 2
        addi x12, x12, 3
        addi x13, x13, 4
        addi x14, x14, 1
        addi x15, x15, 2
        addi x16, x16, 3
        addi x5, x5, -1
        bnez x5, loop
        halt
)");
    EXPECT_GT(r.ipc(), 2.0);
}

TEST(CoreSie, SerialChainLimitsIpc)
{
    // One serial dependence chain: IPC must stay near 1 (plus overhead).
    const auto r = runSie(R"(
.text
        li x5, 2000
        li x6, 0
loop:   addi x6, x6, 1
        addi x6, x6, 1
        addi x6, x6, 1
        addi x6, x6, 1
        addi x6, x6, 1
        addi x6, x6, 1
        addi x5, x5, -1
        bnez x5, loop
        halt
)");
    EXPECT_LT(r.ipc(), 1.6);
    EXPECT_GT(r.ipc(), 0.8);
}

TEST(CoreSie, MulLatencyVisible)
{
    // Serial multiply chain: ~3 cycles per mul.
    const auto r = runSie(R"(
.text
        li x5, 1000
        li x6, 1
loop:   mul x6, x6, x6
        mul x6, x6, x6
        addi x5, x5, -1
        bnez x5, loop
        halt
)");
    // 2 muls * 3 cycles dominate each 4-instruction iteration.
    EXPECT_LT(r.ipc(), 1.0);
}

TEST(CoreSie, FuContentionLimitsThroughput)
{
    Config narrow = harness::baseConfig("sie");
    narrow.setInt("fu.intalu", 1);
    const auto wide = runSie(sumLoop);
    const auto one_alu = runSie(sumLoop, narrow);
    EXPECT_GT(wide.ipc(), one_alu.ipc());
    EXPECT_GT(one_alu.stat("core.fu.fu_busy"), 0.0);
}

TEST(CoreSie, BranchPredictorLearnsLoop)
{
    const auto r = runSie(sumLoop);
    // The loop branch is highly biased: well under 10% mispredicts.
    const double recov = r.stat("core.recoveries");
    EXPECT_LT(recov, 60.0);
}

TEST(CoreSie, MispredictsCauseRecoveries)
{
    // Data-dependent unpredictable branch pattern via LCG.
    const auto r = runSie(R"(
.text
        li x5, 3000
        li x6, 777
        li x7, 1103515245
        li x9, 0
loop:   mul x6, x6, x7
        addi x6, x6, 4057
        srli x8, x6, 16
        andi x8, x8, 1
        beqz x8, skip
        addi x9, x9, 1
skip:   addi x5, x5, -1
        bnez x5, loop
        putint x9
        halt
)");
    EXPECT_GT(r.stat("core.recoveries"), 500.0);
    // And the result is still architecturally correct.
    EXPECT_EQ(r.core.stop, StopReason::Halted);
}

TEST(CoreSie, WrongPathWorkIsObservable)
{
    const auto r = runSie(R"(
.text
        li x5, 2000
        li x6, 777
        li x7, 1103515245
loop:   mul x6, x6, x7
        addi x6, x6, 4057
        srli x8, x6, 17
        andi x8, x8, 1
        beqz x8, skip
        addi x9, x9, 1
skip:   addi x5, x5, -1
        bnez x5, loop
        halt
)");
    EXPECT_GT(r.stat("core.wrong_path"), 1000.0);
}

TEST(CoreSie, WrongPathStoresDoNotCorruptMemory)
{
    // A store sits on the wrong path of a mispredicted branch; memory
    // must end up exactly as the VM computes it.
    const Program prog = assemble(R"(
.text
        la x10, buf
        li x5, 500
        li x6, 777
        li x7, 1103515245
loop:   mul x6, x6, x7
        addi x6, x6, 4057
        srli x8, x6, 16
        andi x8, x8, 1
        bnez x8, skip
        sd x6, 0(x10)
skip:   addi x5, x5, -1
        bnez x5, loop
        ld x11, 0(x10)
        putint x11
        halt
.data
buf: .space 8
)", "wp");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("sie"));
    EXPECT_EQ(err, "") << err;
}

TEST(CoreSie, InstLimitStops)
{
    const Program prog = assemble(".text\nspin: j spin\n", "spin");
    Config cfg = harness::baseConfig("sie");
    const auto r = harness::run(prog, cfg, 5000);
    EXPECT_EQ(r.core.stop, StopReason::InstLimit);
    EXPECT_GE(r.core.archInsts, 5000u);
}

TEST(CoreSie, RunningOffTextEndsRun)
{
    const Program prog = assemble(".text\nnop\nnop\nnop\n", "off");
    const auto r = harness::run(prog, harness::baseConfig("sie"));
    EXPECT_EQ(r.core.stop, StopReason::BadPc);
}

TEST(CoreSie, SmallRuuThrottles)
{
    Config tiny = harness::baseConfig("sie");
    tiny.setInt("ruu.size", 8);
    tiny.setInt("lsq.size", 4);
    const auto small = runSie(sumLoop, tiny);
    const auto big = runSie(sumLoop);
    EXPECT_GE(big.ipc(), small.ipc());
    EXPECT_GT(small.stat("core.dispatch_stall_ruu"), 0.0);
}

TEST(CoreSie, CacheMissesSlowLoads)
{
    // Stride through 512 KiB (beyond L1) vs hitting one line.
    const char *body = R"(
.text
        li x5, 4000
        li x6, 0
        li x8, 0x20000000
        li x10, 1048575
loop:   add x7, x8, x6
        ld x9, 0(x7)
        addi x6, x6, %STRIDE%
        and x6, x6, x10
        addi x5, x5, -1
        bnez x5, loop
        halt
)";
    std::string near = body, far = body;
    near.replace(near.find("%STRIDE%"), 8, "0");
    far.replace(far.find("%STRIDE%"), 8, "128");
    const auto rn = runSie(near);
    const auto rf = runSie(far);
    EXPECT_GT(rn.ipc(), rf.ipc());
}

TEST(CoreSie, StoreToLoadForwardingFast)
{
    // Immediate reload of a just-stored value should not pay cache misses
    // beyond the first.
    const auto r = runSie(R"(
.text
        la x10, buf
        li x5, 2000
loop:   sd x5, 0(x10)
        ld x6, 0(x10)
        add x7, x7, x6
        addi x5, x5, -1
        bnez x5, loop
        putint x7
        halt
.data
buf: .space 8
)");
    EXPECT_GT(r.stat("core.loads_forwarded"), 1500.0);
    EXPECT_EQ(r.core.stop, StopReason::Halted);
}

TEST(CoreSie, ChecksNeverRunInSieMode)
{
    const auto r = runSie(sumLoop);
    EXPECT_EQ(r.stat("core.checker.checks"), 0.0);
}

TEST(CoreSie, StatsDumpRendersKeyCounters)
{
    const auto r = runSie(sumLoop);
    EXPECT_NE(r.statsText.find("core.cycles"), std::string::npos);
    EXPECT_NE(r.statsText.find("core.ipc"), std::string::npos);
    EXPECT_NE(r.statsText.find("core.bp.lookups"), std::string::npos);
    EXPECT_NE(r.statsText.find("core.memhier.l1d.hits"), std::string::npos);
}
