/**
 * @file
 * Unit tests for the functional VM and executor: per-opcode semantics,
 * memory, program output, stop conditions, and the ExecOutcome fields the
 * timing model and the IRB rely on.
 */

#include <gtest/gtest.h>

#include <bit>

#include "asm/assembler.hh"
#include "vm/vm.hh"

using namespace direb;

namespace
{

/** Run a .text body and return the VM for inspection (kept alive). */
Vm &
runAsm(const std::string &body, std::uint64_t max_insts = 1'000'000)
{
    static std::vector<std::unique_ptr<Program>> progs;
    static std::vector<std::unique_ptr<Vm>> vms;
    progs.push_back(std::make_unique<Program>(assemble(body, "test")));
    vms.push_back(std::make_unique<Vm>(*progs.back()));
    vms.back()->run(max_insts);
    return *vms.back();
}

RegVal
regAfter(const std::string &body, unsigned reg)
{
    const Vm &vm = runAsm(".text\n" + body + "\nhalt\n");
    return vm.state().readIntReg(reg);
}

double
fregAfter(const std::string &body, unsigned reg)
{
    const Vm &vm = runAsm(".text\n" + body + "\nhalt\n");
    return std::bit_cast<double>(vm.state().readFpReg(reg));
}

} // namespace

// ---------------------------------------------------------------------------
// Integer ALU semantics
// ---------------------------------------------------------------------------

TEST(VmInt, AddSub)
{
    EXPECT_EQ(regAfter("li x5, 7\nli x6, 3\nadd x7, x5, x6", 7), 10u);
    EXPECT_EQ(regAfter("li x5, 7\nli x6, 3\nsub x7, x5, x6", 7), 4u);
    EXPECT_EQ(regAfter("li x5, 3\nli x6, 7\nsub x7, x5, x6", 7),
              static_cast<RegVal>(-4));
}

TEST(VmInt, Logicals)
{
    EXPECT_EQ(regAfter("li x5, 12\nli x6, 10\nand x7, x5, x6", 7), 8u);
    EXPECT_EQ(regAfter("li x5, 12\nli x6, 10\nor  x7, x5, x6", 7), 14u);
    EXPECT_EQ(regAfter("li x5, 12\nli x6, 10\nxor x7, x5, x6", 7), 6u);
}

TEST(VmInt, Shifts)
{
    EXPECT_EQ(regAfter("li x5, 1\nslli x6, x5, 40", 6),
              std::uint64_t(1) << 40);
    EXPECT_EQ(regAfter("li x5, -16\nsrai x6, x5, 2", 6),
              static_cast<RegVal>(-4));
    EXPECT_EQ(regAfter("li x5, -16\nli x7, 2\nsra x6, x5, x7", 6),
              static_cast<RegVal>(-4));
    EXPECT_EQ(regAfter("li x5, 16\nsrli x6, x5, 2", 6), 4u);
}

TEST(VmInt, SetLessThan)
{
    EXPECT_EQ(regAfter("li x5, -1\nli x6, 1\nslt x7, x5, x6", 7), 1u);
    EXPECT_EQ(regAfter("li x5, -1\nli x6, 1\nsltu x7, x5, x6", 7), 0u);
    EXPECT_EQ(regAfter("li x5, -1\nslti x7, x5, 0", 7), 1u);
}

TEST(VmInt, MulDiv)
{
    EXPECT_EQ(regAfter("li x5, 6\nli x6, 7\nmul x7, x5, x6", 7), 42u);
    EXPECT_EQ(regAfter("li x5, -6\nli x6, 7\nmul x7, x5, x6", 7),
              static_cast<RegVal>(-42));
    EXPECT_EQ(regAfter("li x5, 42\nli x6, 5\ndiv x7, x5, x6", 7), 8u);
    EXPECT_EQ(regAfter("li x5, -42\nli x6, 5\ndiv x7, x5, x6", 7),
              static_cast<RegVal>(-8));
    EXPECT_EQ(regAfter("li x5, 42\nli x6, 5\nrem x7, x5, x6", 7), 2u);
}

TEST(VmInt, MulHigh)
{
    // (2^32)^2 = 2^64: high word is 1.
    EXPECT_EQ(regAfter("li x5, 1\nslli x5, x5, 32\nmulh x7, x5, x5", 7),
              1u);
}

TEST(VmInt, DivisionByZeroDoesNotTrap)
{
    EXPECT_EQ(regAfter("li x5, 42\ndiv x7, x5, x0", 7), ~RegVal(0));
    EXPECT_EQ(regAfter("li x5, 42\ndivu x7, x5, x0", 7), ~RegVal(0));
    EXPECT_EQ(regAfter("li x5, 42\nrem x7, x5, x0", 7), 42u);
    EXPECT_EQ(regAfter("li x5, 42\nremu x7, x5, x0", 7), 42u);
}

TEST(VmInt, X0AlwaysZero)
{
    EXPECT_EQ(regAfter("li x5, 9\nadd x0, x5, x5\nmv x6, x0", 6), 0u);
}

TEST(VmInt, LuiOriComposition)
{
    // li of a large constant goes through LUI+ORI.
    EXPECT_EQ(regAfter("li x5, 1103515245", 5), 1103515245u);
    EXPECT_EQ(regAfter("li x5, -1103515245", 5),
              static_cast<RegVal>(-1103515245));
    EXPECT_EQ(regAfter("li x5, 0x10000000", 5), 0x10000000u);
}

// ---------------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------------

TEST(VmControl, LoopAndBranches)
{
    // 1+2+...+10
    EXPECT_EQ(regAfter(R"(
        li x5, 0
        li x6, 0
loop:   addi x5, x5, 1
        add x6, x6, x5
        li x7, 10
        blt x5, x7, loop
)", 6), 55u);
}

TEST(VmControl, UnsignedBranches)
{
    EXPECT_EQ(regAfter(R"(
        li x5, -1
        li x6, 1
        li x7, 0
        bltu x6, x5, set    # 1 <u 0xffff... -> taken
        j done
set:    li x7, 99
done:   nop
)", 7), 99u);
}

TEST(VmControl, CallReturn)
{
    EXPECT_EQ(regAfter(R"(
        li a0, 5
        call twice
        mv x5, a0
        j done
twice:  add a0, a0, a0
        ret
done:   nop
)", 5), 10u);
}

TEST(VmControl, JalrComputedTarget)
{
    EXPECT_EQ(regAfter(R"(
        la x6, target
        jalr x1, x6, 0
        nop
target: li x5, 77
)", 5), 77u);
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

TEST(VmMem, StoreLoadWidths)
{
    EXPECT_EQ(regAfter(R"(
        la x6, buf
        li x5, -2
        sb x5, 0(x6)
        lbu x7, 0(x6)
)"
        "\nhalt\n.data\nbuf: .space 16\n.text", 7), 254u);

    EXPECT_EQ(regAfter(R"(
        la x6, buf
        li x5, -2
        sw x5, 0(x6)
        lw x7, 0(x6)
        halt
.data
buf: .space 16
.text
)", 7), static_cast<RegVal>(-2));
}

TEST(VmMem, SignVsZeroExtension)
{
    const std::string prelude = R"(
        la x6, buf
        li x5, 0x80
        sb x5, 0(x6)
)";
    const std::string suffix = "\nhalt\n.data\nbuf: .space 8\n.text";
    EXPECT_EQ(regAfter(prelude + "lb x7, 0(x6)" + suffix, 7),
              static_cast<RegVal>(-128));
    EXPECT_EQ(regAfter(prelude + "lbu x7, 0(x6)" + suffix, 7), 128u);
}

TEST(VmMem, DoubleWordRoundTrip)
{
    EXPECT_EQ(regAfter(R"(
        la x6, buf
        li x5, 0x12345678
        slli x5, x5, 12
        addi x5, x5, 0x9ab
        sd x5, 8(x6)
        ld x7, 8(x6)
        halt
.data
buf: .space 16
.text
)", 7), 0x123456789abu);
}

TEST(VmMem, UntouchedMemoryReadsZero)
{
    EXPECT_EQ(regAfter("li x6, 0x20000000\nld x7, 0(x6)", 7), 0u);
}

TEST(VmMem, DataSegmentInitialised)
{
    EXPECT_EQ(regAfter(R"(
        la x6, vals
        lw x7, 4(x6)
        halt
.data
vals: .word 11, 22, 33
.text
)", 7), 22u);
}

// ---------------------------------------------------------------------------
// Floating point
// ---------------------------------------------------------------------------

TEST(VmFp, Arithmetic)
{
    const std::string data =
        "\nhalt\n.data\n.align 8\nd: .double 3.0, 4.0\n.text";
    EXPECT_DOUBLE_EQ(fregAfter(
        "la x5, d\nfld f1, 0(x5)\nfld f2, 8(x5)\nfadd f3, f1, f2" + data,
        3), 7.0);
    EXPECT_DOUBLE_EQ(fregAfter(
        "la x5, d\nfld f1, 0(x5)\nfld f2, 8(x5)\nfmul f3, f1, f2" + data,
        3), 12.0);
    EXPECT_DOUBLE_EQ(fregAfter(
        "la x5, d\nfld f1, 0(x5)\nfld f2, 8(x5)\nfdiv f3, f1, f2" + data,
        3), 0.75);
}

TEST(VmFp, SqrtNegAbs)
{
    const std::string data =
        "\nhalt\n.data\n.align 8\nd: .double 9.0\n.text";
    EXPECT_DOUBLE_EQ(fregAfter("la x5, d\nfld f1, 0(x5)\nfsqrt f2, f1" +
                               data, 2), 3.0);
    EXPECT_DOUBLE_EQ(fregAfter("la x5, d\nfld f1, 0(x5)\nfneg f2, f1" +
                               data, 2), -9.0);
    EXPECT_DOUBLE_EQ(fregAfter(
        "la x5, d\nfld f1, 0(x5)\nfneg f2, f1\nfabs f3, f2" + data, 3),
        9.0);
}

TEST(VmFp, Conversions)
{
    EXPECT_DOUBLE_EQ(fregAfter("li x5, -7\nfcvtdl f1, x5", 1), -7.0);
    EXPECT_EQ(regAfter(R"(
        li x5, 9
        fcvtdl f1, x5
        fsqrt f2, f1
        fcvtld x7, f2
)", 7), 3u);
}

TEST(VmFp, Compares)
{
    const std::string body = R"(
        li x5, 1
        li x6, 2
        fcvtdl f1, x5
        fcvtdl f2, x6
)";
    EXPECT_EQ(regAfter(body + "flt x7, f1, f2", 7), 1u);
    EXPECT_EQ(regAfter(body + "flt x7, f2, f1", 7), 0u);
    EXPECT_EQ(regAfter(body + "fle x7, f1, f1", 7), 1u);
    EXPECT_EQ(regAfter(body + "feq x7, f1, f2", 7), 0u);
}

TEST(VmFp, MinMax)
{
    const std::string body = R"(
        li x5, 3
        li x6, 8
        fcvtdl f1, x5
        fcvtdl f2, x6
)";
    EXPECT_DOUBLE_EQ(fregAfter(body + "fmin f3, f1, f2", 3), 3.0);
    EXPECT_DOUBLE_EQ(fregAfter(body + "fmax f3, f1, f2", 3), 8.0);
}

// ---------------------------------------------------------------------------
// Output, stop conditions, ExecOutcome details
// ---------------------------------------------------------------------------

TEST(VmSys, ProgramOutput)
{
    const Vm &vm = runAsm(R"(
.text
    li x5, 72
    putc x5
    li x5, 105
    putc x5
    li x6, 42
    putint x6
    halt
)");
    EXPECT_EQ(vm.state().out, "Hi42\n");
}

TEST(VmSys, HaltStops)
{
    const Vm &vm = runAsm(".text\nli x5, 1\nhalt\nli x5, 2\n");
    EXPECT_TRUE(vm.halted());
    EXPECT_EQ(vm.state().readIntReg(5), 1u);
    EXPECT_EQ(vm.instCount(), 2u);
}

TEST(VmSys, InstLimit)
{
    Program p = assemble(".text\nspin: j spin\n");
    Vm vm(p);
    EXPECT_EQ(vm.run(100), StopReason::InstLimit);
    EXPECT_EQ(vm.instCount(), 100u);
}

TEST(VmSys, FallingOffTextIsBadPc)
{
    Program p = assemble(".text\nnop\nnop\n");
    Vm vm(p);
    EXPECT_EQ(vm.run(), StopReason::BadPc);
    EXPECT_EQ(vm.instCount(), 2u);
}

TEST(VmSys, ClassCountsTracked)
{
    const Vm &vm = runAsm(
        ".text\nli x5, 2\nli x6, 3\nmul x7, x5, x6\nhalt\n");
    const auto &counts = vm.classCounts();
    EXPECT_EQ(counts[static_cast<unsigned>(OpClass::IntMul)], 1u);
    EXPECT_GE(counts[static_cast<unsigned>(OpClass::IntAlu)], 2u);
}

TEST(ExecOutcome, ResultFieldsForIrb)
{
    Program p = assemble(".text\nnop\n");
    Memory mem;
    ArchState st(mem);
    st.writeIntReg(5, 10);
    st.writeIntReg(6, 32);

    // ALU op: result is the destination value.
    auto out = execute(makeR(Opcode::ADD, 7, 5, 6), 0x1000, st);
    EXPECT_EQ(out.result, 42u);
    EXPECT_EQ(out.op1Val, 10u);
    EXPECT_EQ(out.op2Val, 32u);

    // Load: result is the effective address.
    out = execute(makeI(Opcode::LD, 7, 5, 16), 0x1000, st);
    EXPECT_EQ(out.result, 26u);
    EXPECT_EQ(out.effAddr, 26u);

    // Branch: result packs (target << 1) | taken.
    st.writeIntReg(5, 1);
    st.writeIntReg(6, 1);
    out = execute(makeB(Opcode::BEQ, 5, 6, -4), 0x1000, st);
    EXPECT_TRUE(out.taken);
    EXPECT_EQ(out.target, 0x1000u - 16u);
    EXPECT_EQ(out.result, ((0x1000u - 16u) << 1) | 1u);
    EXPECT_EQ(out.nextPc, 0x1000u - 16u);
}

TEST(ExecOutcome, StoreRecordsData)
{
    Memory mem;
    ArchState st(mem);
    st.writeIntReg(5, 0x2000);
    st.writeIntReg(6, 77);
    const auto out = execute(makeS(Opcode::SD, 5, 6, 8), 0x1000, st);
    EXPECT_EQ(out.effAddr, 0x2008u);
    EXPECT_EQ(out.storeData, 77u);
    EXPECT_EQ(mem.read(0x2008, 8), 77u);
}
