/**
 * @file
 * Cross-module integration tests: every kernel runs golden (bit-exact
 * against the functional VM) under every execution mode, under stressed
 * machine configurations, and the harness/report layers behave.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

class GoldenAllModes
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{};

} // namespace

TEST_P(GoldenAllModes, KernelMatchesVm)
{
    setQuiet(true);
    const auto &[workload, mode] = GetParam();
    const Program prog = workloads::build(workload, 1);
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig(mode));
    EXPECT_EQ(err, "") << err;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, GoldenAllModes,
    ::testing::Combine(
        ::testing::Values("compress", "route", "cc_expr", "pointer",
                          "parse", "object", "sort", "anneal", "stencil",
                          "neural", "moldyn", "raster"),
        ::testing::Values("sie", "die", "die-irb")),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(IntegrationStress, TinyMachineStillGolden)
{
    setQuiet(true);
    Config cfg = harness::baseConfig("die-irb");
    cfg.setInt("ruu.size", 16);
    cfg.setInt("lsq.size", 8);
    cfg.setInt("width.fetch", 2);
    cfg.setInt("width.decode", 2);
    cfg.setInt("width.issue", 2);
    cfg.setInt("width.commit", 2);
    cfg.setInt("fu.intalu", 1);
    cfg.setInt("fu.intmul", 1);
    cfg.setInt("fu.fpadd", 1);
    cfg.setInt("fu.memport", 1);
    cfg.setInt("irb.entries", 16);
    for (const char *w : {"anneal", "cc_expr", "stencil"}) {
        const Program prog = workloads::build(w, 1);
        const std::string err = harness::goldenCheck(prog, cfg);
        EXPECT_EQ(err, "") << w << ": " << err;
    }
}

TEST(IntegrationStress, HugeMachineStillGolden)
{
    setQuiet(true);
    Config cfg = harness::baseConfig("die");
    cfg.setInt("ruu.size", 512);
    cfg.setInt("lsq.size", 256);
    cfg.setInt("width.fetch", 16);
    cfg.setInt("width.decode", 16);
    cfg.setInt("width.issue", 16);
    cfg.setInt("width.commit", 16);
    cfg.setInt("fu.intalu", 8);
    for (const char *w : {"compress", "raster"}) {
        const Program prog = workloads::build(w, 1);
        const std::string err = harness::goldenCheck(prog, cfg);
        EXPECT_EQ(err, "") << w << ": " << err;
    }
}

TEST(IntegrationStress, TinyCachesStillGolden)
{
    setQuiet(true);
    Config cfg = harness::baseConfig("die-irb");
    cfg.setInt("l1i.size", 2048);
    cfg.setInt("l1d.size", 2048);
    cfg.setInt("l2.size", 16384);
    const Program prog = workloads::build("pointer", 1);
    const std::string err = harness::goldenCheck(prog, cfg);
    EXPECT_EQ(err, "") << err;
}

TEST(IntegrationStress, SlowMemoryOnlyChangesTiming)
{
    setQuiet(true);
    Config fast = harness::baseConfig("sie");
    Config slow = harness::baseConfig("sie");
    slow.setInt("mem.lat", 500);
    const Program prog = workloads::build("pointer", 1);
    const auto rf = harness::run(prog, fast);
    const auto rs = harness::run(prog, slow);
    EXPECT_EQ(rf.output, rs.output);
    EXPECT_GT(rs.core.cycles, rf.core.cycles);
}

TEST(IntegrationStress, BimodalVsTournamentOnlyChangesTiming)
{
    setQuiet(true);
    Config bi = harness::baseConfig("die");
    bi.set("bp.kind", "bimodal");
    const Program prog = workloads::build("anneal", 1);
    const auto rb = harness::run(prog, bi);
    const auto rt = harness::run(prog, harness::baseConfig("die"));
    EXPECT_EQ(rb.output, rt.output);
}

// ---------------------------------------------------------------------------
// Harness / report
// ---------------------------------------------------------------------------

TEST(Harness, GoldenCheckCatchesDivergence)
{
    // Feed the checker two different programs' worth of run by limiting
    // instructions: the VM and core agree, so this passes; then prove the
    // mechanism detects differences using a bad instruction budget is not
    // possible from outside — instead verify it reports cleanly on a
    // healthy run and that SimResult exposes stats.
    setQuiet(true);
    const auto r =
        harness::runWorkload("parse", harness::baseConfig("sie"));
    EXPECT_GT(r.stat("core.cycles"), 0.0);
    EXPECT_EQ(r.stat("no.such.stat"), 0.0);
    EXPECT_GT(r.core.ipc, 0.0);
}

TEST(Report, TableRendersAligned)
{
    harness::Table t({"name", "ipc", "loss"});
    t.row().cell("compress").num(1.234, 3).pct(0.217, 1);
    t.row().cell("x").num(10.0, 1).pct(0.0, 1);
    const std::string out = t.render();
    EXPECT_NE(out.find("compress"), std::string::npos);
    EXPECT_NE(out.find("1.234"), std::string::npos);
    EXPECT_NE(out.find("21.7%"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Report, Means)
{
    EXPECT_DOUBLE_EQ(harness::mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(harness::mean({}), 0.0);
    EXPECT_NEAR(harness::geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(harness::geomean({}), 0.0);
}

TEST(Harness, ConfigOverridesReachComponents)
{
    setQuiet(true);
    Config cfg = harness::baseConfig("die-irb");
    cfg.parse("irb.entries=64");
    cfg.parse("fu.intalu=2");
    const auto r = harness::runWorkload("compress", cfg);
    EXPECT_GT(r.stat("core.fu.fu_busy"), 0.0);
    EXPECT_EQ(r.core.stop, StopReason::Halted);
}
