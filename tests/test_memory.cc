/**
 * @file
 * Unit tests for the sparse memory model and the speculative execution
 * context overlay (shadow registers + byte-granular memory overlay).
 */

#include <gtest/gtest.h>

#include "cpu/spec_state.hh"
#include "vm/memory.hh"

using namespace direb;

TEST(Memory, ReadsZeroWhenUntouched)
{
    Memory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.pagesAllocated(), 0u); // reads must not allocate
}

TEST(Memory, WriteReadRoundTrip)
{
    Memory m;
    m.write(0x1000, 0xdeadbeefcafebabeull, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0xdeadbeefcafebabeull);
    EXPECT_EQ(m.read(0x1000, 4), 0xcafebabeull);
    EXPECT_EQ(m.read(0x1004, 4), 0xdeadbeefull);
    EXPECT_EQ(m.read(0x1000, 1), 0xbeull);
}

TEST(Memory, LittleEndianLayout)
{
    Memory m;
    m.write(0x2000, 0x0102030405060708ull, 8);
    EXPECT_EQ(m.read(0x2000, 1), 0x08u);
    EXPECT_EQ(m.read(0x2007, 1), 0x01u);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    const Addr a = Memory::pageSize - 4;
    m.write(a, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(a, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.pagesAllocated(), 2u);
}

TEST(Memory, PartialWritePreservesNeighbours)
{
    Memory m;
    m.write(0x3000, ~std::uint64_t(0), 8);
    m.write(0x3002, 0, 2);
    EXPECT_EQ(m.read(0x3000, 8), 0xffffffff0000ffffull);
}

TEST(Memory, BlobRoundTrip)
{
    Memory m;
    const char msg[] = "hello world";
    m.writeBlob(0x4000, msg, sizeof(msg));
    char out[sizeof(msg)];
    m.readBlob(0x4000, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(Memory, ClearDropsEverything)
{
    Memory m;
    m.write(0x1000, 42, 8);
    m.clear();
    EXPECT_EQ(m.read(0x1000, 8), 0u);
    EXPECT_EQ(m.pagesAllocated(), 0u);
}

// ---------------------------------------------------------------------------
// SpecExecContext
// ---------------------------------------------------------------------------

TEST(SpecState, NonSpecWritesGoArchitectural)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    ctx.writeIntReg(5, 99);
    EXPECT_EQ(arch.readIntReg(5), 99u);
}

TEST(SpecState, SpecWritesAreShadowed)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    arch.writeIntReg(5, 1);
    ctx.enterSpec();
    ctx.writeIntReg(5, 2);
    EXPECT_EQ(ctx.readIntReg(5), 2u);   // spec view sees the shadow
    EXPECT_EQ(arch.readIntReg(5), 1u);  // architecture unchanged
    ctx.exitSpec();
    EXPECT_EQ(ctx.readIntReg(5), 1u);   // shadow discarded
}

TEST(SpecState, SpecReadsFallThroughToArch)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    arch.writeIntReg(7, 123);
    arch.writeFpReg(3, 456);
    ctx.enterSpec();
    EXPECT_EQ(ctx.readIntReg(7), 123u); // not shadowed yet
    EXPECT_EQ(ctx.readFpReg(3), 456u);
}

TEST(SpecState, FpShadowIndependentOfIntShadow)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    ctx.enterSpec();
    ctx.writeIntReg(4, 11);
    ctx.writeFpReg(4, 22);
    EXPECT_EQ(ctx.readIntReg(4), 11u);
    EXPECT_EQ(ctx.readFpReg(4), 22u);
}

TEST(SpecState, X0StaysZeroInSpec)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    ctx.enterSpec();
    ctx.writeIntReg(0, 5);
    EXPECT_EQ(ctx.readIntReg(0), 0u);
}

TEST(SpecState, SpecMemoryOverlay)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    m.write(0x1000, 0xaabb, 8);
    ctx.enterSpec();
    ctx.memWrite(0x1000, 0xccdd, 2);
    EXPECT_EQ(ctx.memRead(0x1000, 8), 0xccddull); // overlay merged
    EXPECT_EQ(m.read(0x1000, 8), 0xaabbull);      // memory untouched
    ctx.exitSpec();
    EXPECT_EQ(ctx.memRead(0x1000, 8), 0xaabbull);
}

TEST(SpecState, OverlayMergesPartialBytes)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    m.write(0x2000, 0x1111111111111111ull, 8);
    ctx.enterSpec();
    ctx.memWrite(0x2002, 0xff, 1); // single shadowed byte
    EXPECT_EQ(ctx.memRead(0x2000, 8), 0x1111111111ff1111ull);
}

TEST(SpecState, OutputDroppedOnWrongPath)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    ctx.output("real");
    ctx.enterSpec();
    ctx.output("ghost");
    ctx.exitSpec();
    ctx.output("!");
    EXPECT_EQ(arch.out, "real!");
}

TEST(SpecState, ReenterSpecStartsClean)
{
    Memory m;
    ArchState arch(m);
    SpecExecContext ctx(arch);
    ctx.enterSpec();
    ctx.writeIntReg(5, 42);
    ctx.exitSpec();
    ctx.enterSpec();
    EXPECT_EQ(ctx.readIntReg(5), 0u); // old shadow must not leak
}
