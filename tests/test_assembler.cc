/**
 * @file
 * Unit tests for the assembler: register parsing, directives, labels,
 * pseudo-instruction expansion, branch offsets, and error reporting.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "asm/assembler.hh"
#include "common/logging.hh"

using namespace direb;

namespace
{

Inst
first(const std::string &src)
{
    const Program p = assemble(".text\n" + src + "\n");
    EXPECT_GE(p.size(), 1u);
    return decode(p.text.at(0));
}

} // namespace

TEST(AsmRegisters, NumericNames)
{
    EXPECT_EQ(parseRegister("x0"), intReg(0));
    EXPECT_EQ(parseRegister("x31"), intReg(31));
    EXPECT_EQ(parseRegister("f0"), fpReg(0));
    EXPECT_EQ(parseRegister("f31"), fpReg(31));
}

TEST(AsmRegisters, AbiAliases)
{
    EXPECT_EQ(parseRegister("zero"), intReg(0));
    EXPECT_EQ(parseRegister("ra"), intReg(1));
    EXPECT_EQ(parseRegister("sp"), intReg(2));
    EXPECT_EQ(parseRegister("t0"), intReg(5));
    EXPECT_EQ(parseRegister("t2"), intReg(7));
    EXPECT_EQ(parseRegister("t3"), intReg(28));
    EXPECT_EQ(parseRegister("t6"), intReg(31));
    EXPECT_EQ(parseRegister("s0"), intReg(8));
    EXPECT_EQ(parseRegister("fp"), intReg(8));
    EXPECT_EQ(parseRegister("s1"), intReg(9));
    EXPECT_EQ(parseRegister("s2"), intReg(18));
    EXPECT_EQ(parseRegister("s11"), intReg(27));
    EXPECT_EQ(parseRegister("a0"), intReg(10));
    EXPECT_EQ(parseRegister("a7"), intReg(17));
}

TEST(AsmRegisters, BadNamesAreFatal)
{
    EXPECT_THROW(parseRegister("x32"), FatalError);
    EXPECT_THROW(parseRegister("q7"), FatalError);
    EXPECT_THROW(parseRegister(""), FatalError);
}

TEST(Assembler, BasicRType)
{
    const Inst i = first("add x1, x2, x3");
    EXPECT_EQ(i.op, Opcode::ADD);
    EXPECT_EQ(i.rd, 1);
    EXPECT_EQ(i.rs1, 2);
    EXPECT_EQ(i.rs2, 3);
}

TEST(Assembler, ImmediateForms)
{
    EXPECT_EQ(first("addi x1, x2, -7").imm, -7);
    EXPECT_EQ(first("addi x1, x2, 0x10").imm, 16);
    EXPECT_EQ(first("addi x1, x2, 'a'").imm, 97);
}

TEST(Assembler, ImmediateRangeEnforced)
{
    EXPECT_THROW(assemble(".text\naddi x1, x2, 8192\n"), FatalError);
    EXPECT_THROW(assemble(".text\naddi x1, x2, -8193\n"), FatalError);
    EXPECT_NO_THROW(assemble(".text\naddi x1, x2, 8191\n"));
}

TEST(Assembler, LogicalImmediatesAreUnsigned)
{
    // The 14-bit field is stored sign-extended but zero-extended at
    // execution: ori with 16383 really ORs 0x3fff in.
    EXPECT_EQ(first("ori x1, x2, 16383").imm, -1);
    EXPECT_THROW(assemble(".text\nori x1, x2, -1\n"), FatalError);
    EXPECT_THROW(assemble(".text\nori x1, x2, 16384\n"), FatalError);
}

TEST(Assembler, MemoryOperands)
{
    const Inst lw = first("lw x5, -4(x6)");
    EXPECT_EQ(lw.op, Opcode::LW);
    EXPECT_EQ(lw.rd, 5);
    EXPECT_EQ(lw.rs1, 6);
    EXPECT_EQ(lw.imm, -4);

    const Inst sd = first("sd x7, 16(sp)");
    EXPECT_EQ(sd.op, Opcode::SD);
    EXPECT_EQ(sd.rs2, 7);
    EXPECT_EQ(sd.rs1, 2);
    EXPECT_EQ(sd.imm, 16);

    const Inst zero_off = first("lw x5, (x6)");
    EXPECT_EQ(zero_off.imm, 0);
}

TEST(Assembler, FpInstructions)
{
    const Inst fa = first("fadd f1, f2, f3");
    EXPECT_EQ(fa.op, Opcode::FADD);
    const Inst fl = first("fld f1, 8(x5)");
    EXPECT_EQ(fl.op, Opcode::FLD);
    EXPECT_EQ(fl.rd, 1);
    const Inst fs = first("fsd f1, 8(x5)");
    EXPECT_EQ(fs.op, Opcode::FSD);
    EXPECT_EQ(fs.rs2, 1);
}

TEST(Assembler, WrongRegisterFileIsFatal)
{
    EXPECT_THROW(assemble(".text\nfadd x1, x2, x3\n"), FatalError);
    EXPECT_THROW(assemble(".text\nadd f1, f2, f3\n"), FatalError);
}

TEST(Assembler, BranchToLabel)
{
    const Program p = assemble(R"(
.text
top:
    addi x1, x1, 1
    beq x1, x2, top
    bne x1, x2, down
    nop
down:
    halt
)");
    const Inst beq = decode(p.text.at(1));
    EXPECT_EQ(beq.imm, -1); // one word back
    const Inst bne = decode(p.text.at(2));
    EXPECT_EQ(bne.imm, 2); // skips the nop
}

TEST(Assembler, UndefinedLabelIsFatal)
{
    EXPECT_THROW(assemble(".text\nbeq x1, x2, nowhere\n"), FatalError);
}

TEST(Assembler, DuplicateLabelIsFatal)
{
    EXPECT_THROW(assemble(".text\na:\nnop\na:\nnop\n"), FatalError);
}

TEST(Assembler, LiSmallExpandsToAddi)
{
    const Program p = assemble(".text\nli x5, 42\n");
    ASSERT_EQ(p.size(), 1u);
    const Inst i = decode(p.text[0]);
    EXPECT_EQ(i.op, Opcode::ADDI);
    EXPECT_EQ(i.imm, 42);
}

TEST(Assembler, LiLargeExpandsToLuiOri)
{
    const Program p = assemble(".text\nli x5, 1103515245\n");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(decode(p.text[0]).op, Opcode::LUI);
    EXPECT_EQ(decode(p.text[1]).op, Opcode::ORI);
}

TEST(Assembler, LiHighLowHalfStoresSignExtendedOri)
{
    // Low half 0x3fff does not fit signed 14 bits; the ORI field must be
    // stored sign-extended (-1) to stay encodable. Execution zero-extends
    // it back, so the composed constant is unchanged.
    const Program p = assemble(".text\nli x5, 32767\n"); // 0x7fff
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(decode(p.text[0]).imm, 1);  // hi = 0x7fff >> 14
    EXPECT_EQ(decode(p.text[1]).imm, -1); // lo = 0x3fff, sign-extended
}

TEST(Assembler, LiOutOfRangeIsFatal)
{
    // 2^40 exceeds the 33-bit li window.
    EXPECT_THROW(assemble(".text\nli x5, 1099511627776\n"), FatalError);
}

TEST(Assembler, BranchOffsetOutOfRangeIsFatal)
{
    // A conditional branch reaches +-2^13 instructions; jumping over
    // 9000 nops cannot encode and must be a clean assembly error.
    std::string src = ".text\nbeqz x3, far\n";
    for (int i = 0; i < 9000; ++i)
        src += "addi x1, x1, 0\n";
    src += "far:\nhalt\n";
    try {
        assemble(src);
        FAIL() << "out-of-range branch did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("offset field"),
                  std::string::npos);
    }
    // The same distance is fine for the wider J-format jump.
    EXPECT_NO_THROW(assemble(
        ".text\nj far\n" + src.substr(src.find("addi"))));
}

TEST(Assembler, PseudoInstructions)
{
    const Inst mv = first("mv x3, x4");
    EXPECT_EQ(mv.op, Opcode::ADDI);
    EXPECT_EQ(mv.imm, 0);

    const Inst neg = first("neg x3, x4");
    EXPECT_EQ(neg.op, Opcode::SUB);
    EXPECT_EQ(neg.rs1, 0);

    const Inst ret = first("ret");
    EXPECT_EQ(ret.op, Opcode::JALR);
    EXPECT_EQ(ret.rs1, 1);
    EXPECT_EQ(ret.rd, 0);
}

TEST(Assembler, BranchZeroPseudos)
{
    EXPECT_EQ(first("beqz x3, 4").op, Opcode::BEQ);
    EXPECT_EQ(first("bnez x3, 4").op, Opcode::BNE);
    EXPECT_EQ(first("bltz x3, 4").op, Opcode::BLT);
    EXPECT_EQ(first("bgez x3, 4").op, Opcode::BGE);
    const Inst bgtz = first("bgtz x3, 4");
    EXPECT_EQ(bgtz.op, Opcode::BLT);
    EXPECT_EQ(bgtz.rs1, 0); // swapped operands
}

TEST(Assembler, CallAndJ)
{
    const Program p = assemble(R"(
.text
    call fn
    j end
fn:
    ret
end:
    halt
)");
    const Inst call = decode(p.text[0]);
    EXPECT_EQ(call.op, Opcode::JAL);
    EXPECT_EQ(call.rd, 1);
    EXPECT_EQ(call.imm, 2);
    const Inst j = decode(p.text[1]);
    EXPECT_EQ(j.rd, 0);
}

TEST(Assembler, DataDirectives)
{
    const Program p = assemble(R"(
.data
bytes:  .byte 1, 2, 255
half:   .half 0x1234
        .align 4
word:   .word -1
dword:  .dword 0x123456789a
.text
        halt
)");
    EXPECT_EQ(p.data.at(0), 1);
    EXPECT_EQ(p.data.at(2), 255);
    EXPECT_EQ(p.data.at(3), 0x34);
    // .align 4 pads to offset 8 before the word.
    EXPECT_EQ(p.data.at(8), 0xff);
    EXPECT_EQ(p.data.at(12), 0x9a);
}

TEST(Assembler, AsciizAndSpace)
{
    const Program p = assemble(R"(
.data
msg: .asciiz "hi\n"
gap: .space 5
.text
     halt
)");
    EXPECT_EQ(p.data.at(0), 'h');
    EXPECT_EQ(p.data.at(1), 'i');
    EXPECT_EQ(p.data.at(2), '\n');
    EXPECT_EQ(p.data.at(3), 0);
    EXPECT_EQ(p.data.size(), 9u);
}

TEST(Assembler, DoubleDirective)
{
    const Program p = assemble(".data\nd: .double 1.5\n.text\nhalt\n");
    double d;
    ASSERT_EQ(p.data.size(), 8u);
    std::memcpy(&d, p.data.data(), 8);
    EXPECT_DOUBLE_EQ(d, 1.5);
}

TEST(Assembler, LaLoadsDataAddress)
{
    const Program p = assemble(R"(
.data
pad: .space 16
var: .word 7
.text
    la x5, var
    halt
)");
    ASSERT_EQ(p.size(), 3u); // lui + ori + halt
    EXPECT_EQ(decode(p.text[0]).op, Opcode::LUI);
    EXPECT_EQ(decode(p.text[1]).op, Opcode::ORI);
}

TEST(Assembler, EntryDirective)
{
    const Program p = assemble(R"(
.text
helper:
    nop
main:
    halt
.entry main
)");
    EXPECT_EQ(p.entry, textBase + 4);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = assemble(R"(
# full-line comment
.text
    nop      # trailing comment
    ; semicolon comment
    halt
)");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble(".text\nnop\nbogus x1\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("asm:3"), std::string::npos)
            << e.what();
    }
}

TEST(Assembler, InstructionInDataSectionIsFatal)
{
    EXPECT_THROW(assemble(".data\nadd x1, x2, x3\n"), FatalError);
}

TEST(Assembler, WrongOperandCountIsFatal)
{
    EXPECT_THROW(assemble(".text\nadd x1, x2\n"), FatalError);
    EXPECT_THROW(assemble(".text\nhalt x1\n"), FatalError);
}
