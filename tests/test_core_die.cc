/**
 * @file
 * Tests for DIE (Dual Instruction Execution) mode: duplication
 * book-keeping, architectural equivalence with SIE/VM, commit-time
 * checking, the single-memory-access rule, stream-independent dataflow,
 * and the characteristic IPC loss the paper sets out to attack.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

const char *sumLoop = R"(
.text
        li x5, 0
        li x6, 0
loop:   addi x5, x5, 1
        add x6, x6, x5
        li x7, 1000
        blt x5, x7, loop
        putint x6
        halt
)";

harness::SimResult
runMode(const char *src, const std::string &mode)
{
    const Program prog = assemble(src, "t");
    return harness::run(prog, harness::baseConfig(mode));
}

} // namespace

TEST(CoreDie, ArchitecturallyIdenticalToVm)
{
    const Program prog = assemble(sumLoop, "sum");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("die"));
    EXPECT_EQ(err, "") << err;
}

TEST(CoreDie, CommitsTwoEntriesPerInstruction)
{
    const auto r = runMode(sumLoop, "die");
    EXPECT_EQ(r.core.ruuEntriesCommitted, 2 * r.core.archInsts);
}

TEST(CoreDie, EveryPairIsChecked)
{
    const auto r = runMode(sumLoop, "die");
    EXPECT_EQ(r.stat("core.checker.checks"),
              static_cast<double>(r.core.archInsts));
    EXPECT_EQ(r.stat("core.checker.mismatches"), 0.0);
}

TEST(CoreDie, SlowerThanSie)
{
    const auto sie = runMode(sumLoop, "sie");
    const auto die = runMode(sumLoop, "die");
    EXPECT_LT(die.ipc(), sie.ipc());
    // Architectural results identical.
    EXPECT_EQ(die.output, sie.output);
    EXPECT_EQ(die.core.archInsts, sie.core.archInsts);
}

TEST(CoreDie, MemoryAccessedOncePerLoad)
{
    // The duplicate stream performs address calculation only: D-cache
    // access counts must match the SIE run.
    const char *loads = R"(
.text
        la x10, buf
        li x5, 500
loop:   ld x6, 0(x10)
        ld x7, 8(x10)
        add x8, x6, x7
        addi x5, x5, -1
        bnez x5, loop
        halt
.data
buf: .dword 3, 4
)";
    const auto sie = runMode(loads, "sie");
    const auto die = runMode(loads, "die");
    const double sie_dl1 =
        sie.stat("core.memhier.l1d.hits") + sie.stat("core.memhier.l1d.misses");
    const double die_dl1 =
        die.stat("core.memhier.l1d.hits") + die.stat("core.memhier.l1d.misses");
    EXPECT_EQ(sie_dl1, die_dl1);
}

TEST(CoreDie, DuplicatesConsumeAluBandwidth)
{
    const auto sie = runMode(sumLoop, "sie");
    const auto die = runMode(sumLoop, "die");
    // Twice the entries issue to functional units.
    EXPECT_NEAR(die.stat("core.fu.issued"), 2 * sie.stat("core.fu.issued"),
                0.1 * sie.stat("core.fu.issued"));
}

TEST(CoreDie, EffectiveWidthIsHalved)
{
    // With a serial-free, wide program, SIE commits ~8/cycle and DIE ~4
    // architectural instructions per cycle at best.
    const char *wide = R"(
.text
        li x5, 2000
loop:   addi x10, x10, 1
        addi x11, x11, 1
        addi x12, x12, 1
        addi x13, x13, 1
        addi x5, x5, -1
        bnez x5, loop
        halt
)";
    Config cfg = harness::baseConfig("die");
    cfg.setInt("fu.intalu", 16); // remove the ALU bottleneck
    const Program prog = assemble(wide, "w");
    const auto r = harness::run(prog, cfg);
    EXPECT_LE(r.ipc(), 4.1);
}

TEST(CoreDie, DoubledRuuFootprint)
{
    Config tiny = harness::baseConfig("die");
    tiny.setInt("ruu.size", 16);
    const Program prog = assemble(sumLoop, "t");
    const auto small = harness::run(prog, tiny);
    const auto base = runMode(sumLoop, "die");
    EXPECT_GT(small.stat("core.dispatch_stall_ruu"),
              base.stat("core.dispatch_stall_ruu"));
}

TEST(CoreDie, OddRuuSizeRejected)
{
    Config bad = harness::baseConfig("die");
    bad.setInt("ruu.size", 127);
    const Program prog = assemble(sumLoop, "t");
    EXPECT_THROW(harness::run(prog, bad), FatalError);
}

TEST(CoreDie, MispredictRecoveryStillWorks)
{
    const char *branchy = R"(
.text
        li x5, 2000
        li x6, 777
        li x7, 1103515245
        li x9, 0
loop:   mul x6, x6, x7
        addi x6, x6, 4057
        srli x8, x6, 16
        andi x8, x8, 1
        beqz x8, skip
        addi x9, x9, 1
skip:   addi x5, x5, -1
        bnez x5, loop
        putint x9
        halt
)";
    const Program prog = assemble(branchy, "b");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("die"));
    EXPECT_EQ(err, "") << err;
    const auto r = runMode(branchy, "die");
    EXPECT_GT(r.stat("core.recoveries"), 100.0);
}

TEST(CoreDie, StoresCheckedAndPerformedOnce)
{
    const char *stores = R"(
.text
        la x10, buf
        li x5, 300
loop:   sd x5, 0(x10)
        sd x5, 8(x10)
        addi x5, x5, -1
        bnez x5, loop
        ld x6, 0(x10)
        putint x6
        halt
.data
buf: .space 16
)";
    const Program prog = assemble(stores, "s");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("die"));
    EXPECT_EQ(err, "") << err;
}

TEST(CoreDie, FpAndDivPairsAgree)
{
    const char *fp = R"(
.text
        li x5, 50
        li x6, 7
        fcvtdl f1, x5
        fcvtdl f2, x6
        fdiv f3, f1, f2
        fsqrt f4, f3
        fmul f5, f4, f4
        fcvtld x7, f5
        putint x7
        div x8, x5, x6
        putint x8
        halt
)";
    const Program prog = assemble(fp, "fp");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("die"));
    EXPECT_EQ(err, "") << err;
}

TEST(CoreDie, WholeKernelGoldenChecks)
{
    // A branchy + a memory-heavy kernel run bit-exact under DIE.
    for (const char *w : {"anneal", "pointer"}) {
        const Program prog = workloads::build(w, 1);
        const std::string err =
            harness::goldenCheck(prog, harness::baseConfig("die"));
        EXPECT_EQ(err, "") << w << ": " << err;
    }
}

TEST(CoreDie, LossMatchesPaperRange)
{
    // Across a couple of ALU-bound kernels the DIE loss must land in the
    // paper's reported band (roughly 10-45%).
    for (const char *w : {"compress", "sort"}) {
        const auto sie =
            harness::runWorkload(w, harness::baseConfig("sie"));
        const auto die =
            harness::runWorkload(w, harness::baseConfig("die"));
        const double loss = 1.0 - die.ipc() / sie.ipc();
        EXPECT_GT(loss, 0.10) << w;
        EXPECT_LT(loss, 0.50) << w;
    }
}
