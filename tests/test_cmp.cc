/**
 * @file
 * Chip-level CMP tests.
 *
 * The heart of this file is the refactor gate: with cmp.cores=1 the
 * simulator must be cycle-identical to the pre-CMP single-core build.
 * tests/golden/ holds --stats-json snapshots captured from the seed
 * binary across {route, compress} x {sie, die, die-irb} x {ready_list,
 * scan}; every shared stat key must match exactly, and any key the
 * refactored build adds must be zero (nothing new may fire on the
 * legacy path).
 *
 * The rest covers the CMP mode itself: deterministic lockstep
 * interleaving (same bundle twice -> bit-identical per-core stats),
 * aggregate roll-ups, heterogeneous bundles, and sweep integration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;
using harness::Json;

namespace
{

Json
loadGolden(const std::string &name)
{
    const std::string path = std::string(DIREB_GOLDEN_DIR) + "/" + name;
    std::ifstream in(path);
    if (!in)
        ADD_FAILURE() << "missing golden file " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return Json::parse(ss.str());
}

harness::SimResult
runLegacy(const std::string &workload, const std::string &mode,
          const std::string &scheduler)
{
    Config cfg = harness::baseConfig(mode);
    cfg.set("core.scheduler", scheduler);
    return harness::runWorkload(workload, cfg);
}

harness::SimResult
runCmp(const std::string &workload, const std::string &mode,
       unsigned cores, const std::string &bundle = "")
{
    Config cfg = harness::baseConfig(mode);
    cfg.set("cmp.cores", std::to_string(cores));
    if (!bundle.empty())
        cfg.set("cmp.bundle", bundle);
    return harness::runWorkload(workload, cfg);
}

} // namespace

// ---------------------------------------------------------------------------
// The refactor gate: cmp.cores=1 is the pre-CMP simulator, bit for bit.
// ---------------------------------------------------------------------------

class GoldenIdentity
    : public ::testing::TestWithParam<
          std::tuple<const char *, const char *, const char *>>
{};

TEST_P(GoldenIdentity, SharedKeysMatchNewKeysZero)
{
    const auto [workload, mode, scheduler] = GetParam();
    const Json golden = loadGolden(std::string(workload) + "_" + mode +
                                   "_" + scheduler + ".json");
    ASSERT_TRUE(golden.isObject());

    const harness::SimResult r = runLegacy(workload, mode, scheduler);

    EXPECT_EQ(r.core.cycles, static_cast<Cycle>(
                                 golden.find("cycles")->asNumber()));
    EXPECT_EQ(r.core.archInsts,
              static_cast<std::uint64_t>(
                  golden.find("arch_insts")->asNumber()));

    const Json *gstats = golden.find("stats");
    ASSERT_NE(gstats, nullptr);

    // Every pre-refactor key must still exist with the same value.
    // Counters compare exactly; derived stats (ipc, means, rates) were
    // serialised at 12 significant digits, so they get a matching
    // relative tolerance.
    for (std::size_t i = 0; i < gstats->size(); ++i) {
        const std::string &key = gstats->memberName(i);
        const auto it = r.stats.find(key);
        ASSERT_NE(it, r.stats.end()) << "stat disappeared: " << key;
        const double g = gstats->memberValue(i).asNumber();
        if (g == std::rint(g) && it->second == std::rint(it->second)) {
            EXPECT_EQ(it->second, g) << "stat diverged: " << key;
        } else {
            EXPECT_NEAR(it->second, g, std::abs(g) * 1e-9)
                << "stat diverged: " << key;
        }
    }
    // Keys the refactor added must be inert on the single-core path.
    for (const auto &[key, value] : r.stats) {
        if (gstats->find(key) == nullptr) {
            EXPECT_EQ(value, 0.0)
                << "new stat " << key
                << " fired on the legacy single-core path";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, GoldenIdentity,
    ::testing::Combine(::testing::Values("route", "compress"),
                       ::testing::Values("sie", "die", "die-irb"),
                       ::testing::Values("ready_list", "scan")),
    [](const auto &info) {
        std::string n = std::string(std::get<0>(info.param)) + "_" +
                        std::get<1>(info.param) + "_" +
                        std::get<2>(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// cmp.cores=1 through the explicit key must also be the legacy path.
TEST(Cmp, CoresEqualsOneIsTheLegacyPath)
{
    Config plain = harness::baseConfig("die-irb");
    const harness::SimResult a = harness::runWorkload("route", plain);

    Config keyed = harness::baseConfig("die-irb");
    keyed.set("cmp.cores", "1");
    const harness::SimResult b = harness::runWorkload("route", keyed);

    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_TRUE(b.cores.empty()); // single-core result shape
    EXPECT_EQ(a.stats, b.stats);
}

// ---------------------------------------------------------------------------
// CMP mode proper
// ---------------------------------------------------------------------------

TEST(Cmp, SameBundleTwiceIsBitIdentical)
{
    const harness::SimResult a = runCmp("route", "die-irb", 2);
    const harness::SimResult b = runCmp("route", "die-irb", 2);
    ASSERT_EQ(a.cores.size(), 2u);
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
        EXPECT_EQ(a.cores[c].archInsts, b.cores[c].archInsts);
    }
    EXPECT_EQ(a.stats, b.stats); // every counter, both cores + fabric
    EXPECT_EQ(a.output, b.output);
}

TEST(Cmp, AggregateRollupsAreConsistent)
{
    const harness::SimResult r = runCmp("route", "sie", 4);
    ASSERT_EQ(r.cores.size(), 4u);

    std::uint64_t insts = 0;
    Cycle max_cycles = 0;
    for (const CoreResult &c : r.cores) {
        EXPECT_EQ(c.stop, StopReason::Halted);
        insts += c.archInsts;
        max_cycles = std::max(max_cycles, c.cycles);
    }
    EXPECT_EQ(r.core.archInsts, insts);
    EXPECT_EQ(r.core.cycles, max_cycles);
    EXPECT_DOUBLE_EQ(r.core.ipc,
                     static_cast<double>(insts) /
                         static_cast<double>(max_cycles));

    // The stats tree agrees with the flattened result.
    EXPECT_DOUBLE_EQ(r.stat("cmp.cores"), 4.0);
    EXPECT_DOUBLE_EQ(r.stat("cmp.cycles"),
                     static_cast<double>(max_cycles));
    EXPECT_DOUBLE_EQ(r.stat("cmp.arch_insts"),
                     static_cast<double>(insts));

    // Per-core committed-entry counters roll up to the aggregate (in
    // SIE mode one RUU entry is one architectural instruction).
    double per_core = 0.0;
    for (unsigned c = 0; c < 4; ++c)
        per_core +=
            r.stat("core" + std::to_string(c) + ".entries_committed");
    EXPECT_DOUBLE_EQ(per_core, static_cast<double>(insts));
}

TEST(Cmp, HeterogeneousBundleRunsDistinctPrograms)
{
    const harness::SimResult r =
        runCmp("route", "die-irb", 2, "route,compress");
    ASSERT_EQ(r.cores.size(), 2u);
    EXPECT_EQ(r.cores[0].stop, StopReason::Halted);
    EXPECT_EQ(r.cores[1].stop, StopReason::Halted);
    // Different kernels: the cores cannot have committed the same count.
    EXPECT_NE(r.cores[0].archInsts, r.cores[1].archInsts);
    // Both per-core outputs are present and tagged.
    EXPECT_NE(r.output.find("[core0]"), std::string::npos);
    EXPECT_NE(r.output.find("[core1]"), std::string::npos);
}

TEST(Cmp, NamedBundleMatchesExplicitList)
{
    ASSERT_TRUE(workloads::bundleExists("mix_int"));
    const harness::SimResult a = runCmp("route", "sie", 2, "mix_int");
    const std::vector<workloads::BundleInfo> all = workloads::bundles();
    std::string kernels;
    for (const workloads::BundleInfo &b : all) {
        if (b.name == "mix_int") {
            kernels = b.kernels[0] + "," + b.kernels[1] + "," +
                      b.kernels[2] + "," + b.kernels[3];
        }
    }
    ASSERT_FALSE(kernels.empty());
    const harness::SimResult b = runCmp("route", "sie", 2, kernels);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Cmp, SharedFabricCountersOnlyExistInCmpMode)
{
    const harness::SimResult solo = runCmp("route", "die-irb", 1);
    EXPECT_EQ(solo.stats.count("mem.l2.hits"), 0u);
    EXPECT_EQ(solo.stats.count("mem.coh.invalidations"), 0u);
    EXPECT_NE(solo.stats.count("core.memhier.l2.hits"), 0u);

    const harness::SimResult duo = runCmp("route", "die-irb", 2);
    EXPECT_NE(duo.stats.count("mem.l2.hits"), 0u);
    EXPECT_NE(duo.stats.count("mem.coh.invalidations"), 0u);
    EXPECT_EQ(duo.stats.count("core.memhier.l2.hits"), 0u);
    // Sharing one L2 between two copies of route must produce some
    // coherence traffic (both touch the same static data addresses).
    EXPECT_GT(duo.stat("mem.coh.invalidations"), 0.0);
}

TEST(Cmp, SweepRunsCmpPoints)
{
    harness::Sweep sweep(2);
    Config solo = harness::baseConfig("die-irb");
    sweep.add("solo", "route", solo);
    Config duo = harness::baseConfig("die-irb");
    duo.set("cmp.cores", "2");
    sweep.add("duo", "route", duo);
    const auto results = sweep.run();

    const harness::SimResult &a = harness::requireOk(results[0]);
    const harness::SimResult &b = harness::requireOk(results[1]);
    EXPECT_TRUE(a.cores.empty());
    ASSERT_EQ(b.cores.size(), 2u);

    // The sweep point must agree with a direct run of the same config.
    const harness::SimResult direct = runCmp("route", "die-irb", 2);
    EXPECT_EQ(b.core.cycles, direct.core.cycles);
    EXPECT_EQ(b.stats, direct.stats);
}

TEST(Cmp, GoldenModeRejectsCmp)
{
    Config cfg = harness::baseConfig("sie");
    cfg.set("cmp.cores", "2");
    const Program prog = workloads::build("route", 1);
    EXPECT_THROW(harness::goldenRun(prog, cfg), FatalError);
}

TEST(Cmp, ZeroCoresIsRejected)
{
    Config cfg = harness::baseConfig("sie");
    cfg.set("cmp.cores", "0");
    const Program prog = workloads::build("route", 1);
    EXPECT_THROW(harness::run(prog, cfg), FatalError);
}
