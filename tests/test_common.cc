/**
 * @file
 * Unit tests for the common substrate: bit utilities, RNG, config store,
 * statistics package, and the logging error paths.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/bitutils.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"

using namespace direb;

// ---------------------------------------------------------------------------
// bitutils
// ---------------------------------------------------------------------------

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1024));
    EXPECT_TRUE(isPowerOf2(std::uint64_t(1) << 63));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(1023));
}

TEST(BitUtils, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtils, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 24), 0xdeu);
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(~std::uint64_t(0), 63, 0), ~std::uint64_t(0));
}

TEST(BitUtils, InsertBits)
{
    EXPECT_EQ(insertBits(0, 31, 24, 0xde), 0xde000000u);
    EXPECT_EQ(insertBits(0xffffffff, 7, 0, 0), 0xffffff00u);
    // Field wider than the value is masked.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(BitUtils, InsertExtractRoundTrip)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const unsigned lo = static_cast<unsigned>(rng.below(60));
        const unsigned hi = lo + static_cast<unsigned>(rng.below(63 - lo));
        const std::uint64_t field = rng.next();
        const std::uint64_t v = insertBits(rng.next(), hi, lo, field);
        const std::uint64_t width = hi - lo + 1;
        const std::uint64_t mask = width >= 64
            ? ~std::uint64_t(0)
            : ((std::uint64_t(1) << width) - 1);
        EXPECT_EQ(bits(v, hi, lo), field & mask);
    }
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(sext(0x7f, 8), 0x7f);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x1fff, 14), 8191);
    EXPECT_EQ(sext(0x2000, 14), -8192);
    EXPECT_EQ(sext(~std::uint64_t(0), 64), -1);
}

TEST(BitUtils, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(8191, 14));
    EXPECT_FALSE(fitsSigned(8192, 14));
    EXPECT_TRUE(fitsSigned(-8192, 14));
    EXPECT_FALSE(fitsSigned(-8193, 14));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_TRUE(fitsSigned(0x7fffffffffffffffLL, 64));
}

TEST(BitUtils, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~std::uint64_t(0)), 64u);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

TEST(Config, DefaultsWhenUnset)
{
    Config c;
    EXPECT_EQ(c.getInt("a", 7), 7);
    EXPECT_EQ(c.getString("b", "x"), "x");
    EXPECT_DOUBLE_EQ(c.getDouble("c", 1.5), 1.5);
    EXPECT_TRUE(c.getBool("d", true));
}

TEST(Config, ParseAssignment)
{
    Config c;
    c.parse("ruu.size=256");
    EXPECT_EQ(c.getInt("ruu.size", 128), 256);
}

TEST(Config, ParseRejectsBadSyntax)
{
    Config c;
    EXPECT_THROW(c.parse("nonsense"), FatalError);
    EXPECT_THROW(c.parse("=5"), FatalError);
}

TEST(Config, TypeMismatchIsFatal)
{
    Config c;
    c.set("x", "notanumber");
    EXPECT_THROW(c.getInt("x", 0), FatalError);
    EXPECT_THROW(c.getDouble("x", 0.0), FatalError);
    EXPECT_THROW(c.getBool("x", false), FatalError);
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on"}) {
        c.set("k", t);
        EXPECT_TRUE(c.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        c.set("k", f);
        EXPECT_FALSE(c.getBool("k", true)) << f;
    }
}

TEST(Config, HexIntegers)
{
    Config c;
    c.set("addr", "0x1000");
    EXPECT_EQ(c.getInt("addr", 0), 0x1000);
}

TEST(Config, NegativeUintIsFatal)
{
    Config c;
    c.set("n", "-3");
    EXPECT_THROW(c.getUint("n", 0), FatalError);
}

TEST(Config, UnusedKeysDetected)
{
    Config c;
    c.parse("typo.key=3");
    c.getInt("real.key", 1);
    const auto unused = c.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo.key");
    EXPECT_THROW(c.checkUnused(), FatalError);
}

TEST(Config, ConsumedKeysPass)
{
    Config c;
    c.parse("k=3");
    c.getInt("k", 0);
    EXPECT_NO_THROW(c.checkUnused());
}

// The const getters record consumed keys in a mutable set; concurrent
// reads of one shared Config must not race (run under TSan in CI).
TEST(Config, ConcurrentGetters)
{
    Config c;
    for (int k = 0; k < 32; ++k)
        c.set("key" + std::to_string(k), std::to_string(k));

    std::vector<std::thread> readers;
    for (int t = 0; t < 8; ++t) {
        readers.emplace_back([&c, t] {
            for (int i = 0; i < 2000; ++i) {
                const int k = (t * 7 + i) % 32;
                EXPECT_EQ(c.getInt("key" + std::to_string(k), -1), k);
                c.getString("missing", "d");
            }
        });
    }
    for (auto &r : readers)
        r.join();

    // Every touched key was recorded exactly once.
    EXPECT_TRUE(c.unusedKeys().empty());
    EXPECT_NO_THROW(c.checkUnused());
}

TEST(Config, CopyPreservesConsumedAudit)
{
    Config a;
    a.parse("x=1");
    a.parse("y=2");
    a.getInt("x", 0);

    Config b = a;                 // copy carries values + consumed set
    EXPECT_EQ(b.getInt("y", 0), 2);
    EXPECT_NO_THROW(b.checkUnused());

    // The copies audit independently: 'y' is still unused in 'a'.
    const auto unused = a.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "y");

    b = a;                        // assignment resets b's audit to a's
    const auto unused2 = b.unusedKeys();
    ASSERT_EQ(unused2.size(), 1u);
    EXPECT_EQ(unused2[0], "y");
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(Stats, ScalarCounts)
{
    stats::Scalar s;
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageMean)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, DistributionBuckets)
{
    stats::Distribution d;
    d.init(0.0, 10.0, 5);
    d.sample(-1.0);
    d.sample(0.5);
    d.sample(9.9);
    d.sample(25.0);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.bucketCounts()[0], 1u);
    EXPECT_EQ(d.bucketCounts()[4], 1u);
    EXPECT_EQ(d.count(), 4u);
}

TEST(Stats, FormulaRatio)
{
    stats::Scalar num, den;
    stats::Formula f(&num, &den);
    EXPECT_DOUBLE_EQ(f.value(), 0.0); // no division by zero
    num += 6;
    den += 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Stats, GroupSnapshotAndDump)
{
    stats::Group g("top");
    stats::Scalar s;
    stats::Average a;
    g.addScalar(&s, "count", "a counter");
    g.addAverage(&a, "avg", "an average");
    s += 3;
    a.sample(1.0);
    a.sample(2.0);

    const auto snap = g.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("top.count"), 3.0);
    EXPECT_DOUBLE_EQ(snap.at("top.avg"), 1.5);

    const std::string dump = g.dump();
    EXPECT_NE(dump.find("top.count"), std::string::npos);
    EXPECT_NE(dump.find("a counter"), std::string::npos);
}

TEST(Stats, NestedGroups)
{
    stats::Group parent("core");
    stats::Group child("irb");
    stats::Scalar hits;
    child.addScalar(&hits, "hits", "hits");
    parent.addChild(&child);
    hits += 9;
    EXPECT_DOUBLE_EQ(parent.snapshot().at("core.irb.hits"), 9.0);
}

TEST(Stats, GroupReset)
{
    stats::Group g("g");
    stats::Scalar s;
    g.addScalar(&s, "s", "");
    s += 4;
    g.reset();
    EXPECT_EQ(s.value(), 0u);
}

// ---------------------------------------------------------------------------
// logging
// ---------------------------------------------------------------------------

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        fatal("bad thing %d", 42);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad thing 42"),
                  std::string::npos);
    }
}

TEST(Logging, FatalIfConditions)
{
    EXPECT_THROW(fatal_if(true, "x"), FatalError);
    EXPECT_NO_THROW(fatal_if(false, "x"));
}
