/**
 * @file
 * Steady-state allocation test: once the pipeline is warm, ticking the
 * core must perform ZERO heap allocations, across all three execution
 * modes and both scheduler backends.
 *
 * This pins down the data-layout/allocation pass: RUU slot reuse is
 * clear-in-place (no `ruu[idx] = RuuEntry{}` destroying the old slot's
 * vector capacity), dependence edges live in a slab arena, the scheduler
 * lists and the completion heap borrow capacity-recycling storage from
 * the core-owned SchedStorage arena, and the fetch queue is a fixed
 * ring. Any per-dispatch or per-wakeup allocation sneaking back into the
 * hot loop trips this test immediately.
 *
 * The counting is done by overriding the global allocation functions in
 * this binary; the strong definitions here replace the libstdc++ ones at
 * link time, so every operator-new in the process is counted.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "cpu/ooo_core.hh"
#include "harness/runner.hh"

namespace
{

std::atomic<std::uint64_t> g_news{0};

void *
countedAlloc(std::size_t size)
{
    ++g_news;
    void *p = std::malloc(size ? size : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::align_val_t align)
{
    ++g_news;
    void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                 (size + static_cast<std::size_t>(align) -
                                  1) &
                                     ~(static_cast<std::size_t>(align) - 1));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, align);
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, align);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace direb;

/**
 * A long, well-predicted loop exercising the whole dispatch/wakeup path:
 * dependence chains (ALU), store-to-load forwarding through the LSQ
 * machinery, multiplication (multi-cycle FU), and one backward branch
 * the predictor learns quickly. No OUT instructions (arch.out would
 * grow) and far more iterations than any test window consumes.
 */
std::string
loopKernel()
{
    return R"(.text
        li x10, 65536
        li x6, 1
        li x7, 3
        li x29, 1000000
loop:   add x6, x6, x7
        sd x6, 0(x10)
        ld x8, 0(x10)
        add x9, x8, x6
        mul x11, x6, x7
        sub x12, x9, x11
        addi x29, x29, -1
        bnez x29, loop
        halt
)";
}

constexpr int warmupTicks = 30'000;  //!< reach capacity high-water marks
constexpr int measureTicks = 20'000; //!< steady-state window

} // namespace

TEST(AllocSteady, ZeroAllocationsInWarmPipelineAllModesAndBackends)
{
    setQuiet(true);
    const Program prog = assemble(loopKernel(), "alloc_steady");

    for (const char *mode : {"sie", "die", "die-irb"}) {
        for (const char *sched : {"scan", "ready_list"}) {
            SCOPED_TRACE(std::string(mode) + "/" + sched);
            Config cfg = harness::baseConfig(mode);
            cfg.set("core.scheduler", sched);

            OooCore core(prog, cfg);
            core.setMaxArchInsts(~std::uint64_t(0));
            for (int i = 0; i < warmupTicks && !core.done(); ++i)
                core.tick();
            ASSERT_FALSE(core.done()) << "loop ended inside the warm-up";

            const std::uint64_t before = g_news.load();
            for (int i = 0; i < measureTicks && !core.done(); ++i)
                core.tick();
            const std::uint64_t after = g_news.load();
            ASSERT_FALSE(core.done()) << "loop ended inside the window";

            EXPECT_EQ(after - before, 0u)
                << (after - before)
                << " heap allocations in " << measureTicks
                << " steady-state cycles";
        }
    }
}

TEST(AllocSteady, ResetCoreStaysAllocationFreeWhenWarm)
{
    // A pooled core rebound via reset() must keep every recycled
    // capacity: the second run's steady state allocates nothing either.
    setQuiet(true);
    const Program prog = assemble(loopKernel(), "alloc_steady");
    Config cfg = harness::baseConfig("die-irb");
    cfg.set("core.scheduler", "ready_list");

    OooCore core(prog, cfg);
    core.setMaxArchInsts(~std::uint64_t(0));
    for (int i = 0; i < warmupTicks && !core.done(); ++i)
        core.tick();
    core.reset(prog, cfg);
    core.setMaxArchInsts(~std::uint64_t(0));
    // A short re-warm covers what reset() legitimately rebuilds
    // (components, stats wiring) plus the pipeline refill.
    for (int i = 0; i < warmupTicks && !core.done(); ++i)
        core.tick();
    ASSERT_FALSE(core.done());

    const std::uint64_t before = g_news.load();
    for (int i = 0; i < measureTicks && !core.done(); ++i)
        core.tick();
    const std::uint64_t after = g_news.load();
    ASSERT_FALSE(core.done());

    EXPECT_EQ(after - before, 0u);
}
