/**
 * @file
 * Unit tests for the functional-unit pool: unit counts, latency/issue-rate
 * semantics (pipelined vs non-pipelined), class-to-unit mapping, and
 * memory-port arbitration.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpu/fu_pool.hh"

using namespace direb;

TEST(FuPool, DefaultCountsMatchPaperBase)
{
    Config cfg;
    FuPool fus(cfg);
    EXPECT_EQ(fus.unitCount(OpClass::IntAlu), 4u);
    EXPECT_EQ(fus.unitCount(OpClass::IntMul), 2u);
    EXPECT_EQ(fus.unitCount(OpClass::IntDiv), 2u); // shared with IntMul
    EXPECT_EQ(fus.unitCount(OpClass::FpAdd), 2u);
    EXPECT_EQ(fus.unitCount(OpClass::FpMul), 1u);
    EXPECT_EQ(fus.unitCount(OpClass::FpDiv), 1u);
    EXPECT_EQ(fus.unitCount(OpClass::FpSqrt), 1u);
}

TEST(FuPool, SimpleScalarLatencies)
{
    Config cfg;
    FuPool fus(cfg);
    EXPECT_EQ(fus.timing(OpClass::IntAlu).opLatency, 1u);
    EXPECT_EQ(fus.timing(OpClass::IntMul).opLatency, 3u);
    EXPECT_EQ(fus.timing(OpClass::IntDiv).opLatency, 20u);
    EXPECT_EQ(fus.timing(OpClass::IntDiv).issueLatency, 19u);
    EXPECT_EQ(fus.timing(OpClass::FpAdd).opLatency, 2u);
    EXPECT_EQ(fus.timing(OpClass::FpMul).opLatency, 4u);
    EXPECT_EQ(fus.timing(OpClass::FpDiv).opLatency, 12u);
    EXPECT_EQ(fus.timing(OpClass::FpDiv).issueLatency, 12u);
    EXPECT_EQ(fus.timing(OpClass::FpSqrt).opLatency, 24u);
}

TEST(FuPool, IssueConsumesUnits)
{
    Config cfg;
    cfg.setInt("fu.intalu", 2);
    FuPool fus(cfg);
    Cycle lat;
    EXPECT_TRUE(fus.tryIssue(OpClass::IntAlu, 0, lat));
    EXPECT_TRUE(fus.tryIssue(OpClass::IntAlu, 0, lat));
    EXPECT_FALSE(fus.tryIssue(OpClass::IntAlu, 0, lat)); // both busy
    EXPECT_TRUE(fus.tryIssue(OpClass::IntAlu, 1, lat));  // freed next cycle
    EXPECT_EQ(fus.structuralStalls(), 1u);
}

TEST(FuPool, PipelinedUnitAcceptsEveryCycle)
{
    Config cfg;
    cfg.setInt("fu.fpmul", 1);
    FuPool fus(cfg);
    Cycle lat;
    ASSERT_TRUE(fus.tryIssue(OpClass::FpMul, 0, lat));
    EXPECT_EQ(lat, 4u);
    // FpMul issue latency 1: unit free again next cycle despite 4-cycle
    // operation latency.
    EXPECT_TRUE(fus.tryIssue(OpClass::FpMul, 1, lat));
}

TEST(FuPool, NonPipelinedUnitBlocks)
{
    Config cfg;
    FuPool fus(cfg);
    Cycle lat;
    ASSERT_TRUE(fus.tryIssue(OpClass::FpDiv, 0, lat)); // issue lat 12
    EXPECT_FALSE(fus.tryIssue(OpClass::FpDiv, 5, lat));
    EXPECT_FALSE(fus.canIssue(OpClass::FpSqrt, 11)); // same physical unit
    EXPECT_TRUE(fus.tryIssue(OpClass::FpSqrt, 12, lat));
    EXPECT_EQ(lat, 24u);
}

TEST(FuPool, MulAndDivShareUnits)
{
    Config cfg;
    cfg.setInt("fu.intmul", 1);
    FuPool fus(cfg);
    Cycle lat;
    ASSERT_TRUE(fus.tryIssue(OpClass::IntDiv, 0, lat)); // blocks 19 cycles
    EXPECT_FALSE(fus.canIssue(OpClass::IntMul, 10));
    EXPECT_TRUE(fus.canIssue(OpClass::IntMul, 19));
}

TEST(FuPool, AddressGenerationUsesIntAlu)
{
    // The paper's platform computes memory addresses on the ALUs; the
    // MemRead/MemWrite classes must therefore drain IntAlu units.
    Config cfg;
    cfg.setInt("fu.intalu", 1);
    FuPool fus(cfg);
    Cycle lat;
    ASSERT_TRUE(fus.tryIssue(OpClass::MemRead, 0, lat));
    EXPECT_FALSE(fus.canIssue(OpClass::IntAlu, 0));
    EXPECT_TRUE(fus.canIssue(OpClass::IntAlu, 1));
}

TEST(FuPool, NopNeedsNoUnit)
{
    Config cfg;
    cfg.setInt("fu.intalu", 1);
    FuPool fus(cfg);
    Cycle lat;
    fus.tryIssue(OpClass::IntAlu, 0, lat);
    EXPECT_TRUE(fus.tryIssue(OpClass::Nop, 0, lat)); // always succeeds
}

TEST(FuPool, MemPortsArbitrated)
{
    Config cfg; // 2 ports by default
    FuPool fus(cfg);
    EXPECT_TRUE(fus.tryMemPort(0));
    EXPECT_TRUE(fus.tryMemPort(0));
    EXPECT_FALSE(fus.tryMemPort(0));
    EXPECT_TRUE(fus.tryMemPort(1));
}

TEST(FuPool, ConfigurableCountsAndLatencies)
{
    Config cfg;
    cfg.setInt("fu.intalu", 8);
    cfg.setInt("lat.intmul", 5);
    FuPool fus(cfg);
    EXPECT_EQ(fus.unitCount(OpClass::IntAlu), 8u);
    EXPECT_EQ(fus.timing(OpClass::IntMul).opLatency, 5u);
}

TEST(FuPool, ZeroUnitsIsFatal)
{
    Config cfg;
    cfg.setInt("fu.intalu", 0);
    EXPECT_THROW(FuPool fus(cfg), FatalError);
}
