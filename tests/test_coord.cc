/**
 * @file
 * The coordinator subsystem: hash-ring placement properties, and
 * end-to-end sharded sweeps over real sockets against two in-process
 * dieirb-serve backends — including a backend drained mid-streamed-
 * sweep, after which the merged client stream must still complete,
 * in order, byte-identical to an undisturbed run.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <arpa/inet.h>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <vector>

#include "common/logging.hh"
#include "coord/coordinator.hh"
#include "coord/hash_ring.hh"
#include "harness/report.hh"
#include "service/server.hh"
#include "service/sweep_request.hh"

using namespace direb;
using harness::Json;
using service::HttpRequest;
using service::HttpResponse;

namespace
{

// ---------------------------------------------------------------------
// Socket helpers (mirrors test_service.cc's one-shot client)
// ---------------------------------------------------------------------

int
connectTo(unsigned short port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Read everything until EOF (requests carry Connection: close). */
std::string
readToEof(int fd)
{
    std::string raw;
    char buf[16384];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    return raw;
}

/** De-chunk a complete raw response capture. */
struct Dechunked
{
    int status = 0;
    std::string body;
    bool complete = false; //!< saw the terminal chunk
};

Dechunked
dechunk(const std::string &raw)
{
    Dechunked out;
    const std::size_t hdrEnd = raw.find("\r\n\r\n");
    if (hdrEnd == std::string::npos)
        return out;
    const std::size_t sp = raw.find(' ');
    out.status = std::atoi(raw.c_str() + sp + 1);
    std::string lower = raw.substr(0, hdrEnd);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    std::size_t pos = hdrEnd + 4;
    if (lower.find("transfer-encoding: chunked") == std::string::npos) {
        out.body = raw.substr(pos);
        out.complete = true;
        return out;
    }
    for (;;) {
        const std::size_t eol = raw.find("\r\n", pos);
        if (eol == std::string::npos)
            return out; // truncated mid-size-line
        const std::size_t size =
            std::strtoul(raw.c_str() + pos, nullptr, 16);
        pos = eol + 2;
        if (size == 0) {
            out.complete = true;
            return out;
        }
        if (pos + size + 2 > raw.size())
            return out; // truncated mid-chunk
        out.body.append(raw, pos, size);
        pos += size + 2;
    }
}

std::string
postCloseWire(const std::string &target, const std::string &body)
{
    return "POST " + target +
           " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
           "Content-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
}

// ---------------------------------------------------------------------
// Two-backend fixture
// ---------------------------------------------------------------------

service::ServerOptions
backendOptions()
{
    service::ServerOptions opts;
    opts.port = 0;
    opts.workers = 1;
    opts.httpThreads = 4;
    opts.queueDepth = 8;
    return opts;
}

struct CoordFixture
{
    service::Server backend1;
    service::Server backend2;
    service::Server front;
    coord::CoordOptions copts;
    coord::Coordinator coordinator;

    static service::ServerOptions
    frontOptions()
    {
        service::ServerOptions opts;
        opts.port = 0;
        opts.workers = 8; // fan-out jobs block on the backends
        opts.httpThreads = 4;
        opts.queueDepth = 8;
        opts.modeName = "coord";
        return opts;
    }

    static coord::CoordOptions
    coordOptions(const service::Server &b1, const service::Server &b2)
    {
        coord::CoordOptions copts;
        copts.backends = {
            "127.0.0.1:" + std::to_string(b1.port()),
            "127.0.0.1:" + std::to_string(b2.port()),
        };
        return copts;
    }

    CoordFixture()
        : backend1(backendOptions()), backend2(backendOptions()),
          front(frontOptions()),
          // Members initialise in declaration order, so the backends
          // are listening (ports assigned) before copts reads them.
          copts((backend1.start(), backend2.start(),
                 coordOptions(backend1, backend2))),
          coordinator(front, copts)
    {
        coordinator.start();
    }

    ~CoordFixture()
    {
        front.shutdown();
        coordinator.stop();
        backend1.shutdown();
        backend2.shutdown();
    }

    coord::HashRing
    localRing() const
    {
        return coord::HashRing(
            {"127.0.0.1:" + std::to_string(backend1.port()),
             "127.0.0.1:" + std::to_string(backend2.port())},
            coord::CoordOptions{}.vnodes);
    }
};

/** route() plus response-body JSON parse (socket-free hook tests). */
std::pair<int, Json>
call(service::Server &server, const std::string &method,
     const std::string &target, const std::string &body = "")
{
    HttpRequest req;
    req.method = method;
    req.target = target;
    req.version = "HTTP/1.1";
    req.body = body;
    std::string rid;
    HttpResponse resp = server.route(req, rid);
    return {resp.status, Json::parse(resp.body)};
}

/** A small explicit-name sweep matrix ("p0".."pN-1", distinct keys). */
std::string
sweepBody(std::size_t points, std::uint64_t base_insts, bool stream)
{
    std::string out = "{\"points\": [";
    for (std::size_t p = 0; p < points; ++p) {
        if (p)
            out += ", ";
        out += "{\"name\": \"p" + std::to_string(p) +
               "\", \"workload\": \"route\", \"max_insts\": " +
               std::to_string(base_insts + 1000 * p) + "}";
    }
    out += "], \"cache\": false";
    if (stream)
        out += ", \"stream\": true";
    out += "}";
    return out;
}

/** The PointSpecs the body above parses to (for local ring lookups). */
std::vector<service::PointSpec>
sweepSpecs(std::size_t points, std::uint64_t base_insts)
{
    std::vector<service::PointSpec> specs;
    for (std::size_t p = 0; p < points; ++p) {
        service::PointSpec s;
        s.name = "p" + std::to_string(p);
        s.workload = "route";
        s.maxInsts = base_insts + 1000 * p;
        specs.push_back(std::move(s));
    }
    return specs;
}

/** Expect a complete NDJSON stream: p0..pN-1 all ok, then the summary. */
void
expectCleanStream(const std::string &body, std::size_t points)
{
    std::size_t pos = 0;
    std::size_t idx = 0;
    bool sawDone = false;
    while (pos < body.size()) {
        const std::size_t nl = body.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        const Json j = Json::parse(body.substr(pos, nl - pos));
        pos = nl + 1;
        if (j.find("done")) {
            sawDone = true;
            EXPECT_EQ(j.find("total")->asNumber(),
                      static_cast<double>(points));
            EXPECT_EQ(j.find("cancelled")->asNumber(), 0.0);
            EXPECT_EQ(pos, body.size());
            break;
        }
        ASSERT_LT(idx, points);
        EXPECT_EQ(j.find("name")->asString(),
                  "p" + std::to_string(idx));
        EXPECT_EQ(j.find("status")->asString(), "ok");
        ++idx;
    }
    EXPECT_TRUE(sawDone);
    EXPECT_EQ(idx, points);
}

} // namespace

// ---------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------

TEST(HashRing, SpreadsKeysAcrossAllNodes)
{
    const std::vector<std::string> nodes = {"n0:1", "n1:1", "n2:1",
                                            "n3:1"};
    coord::HashRing ring(nodes, 64);
    std::vector<std::size_t> counts(nodes.size(), 0);
    const std::size_t keys = 20'000;
    for (std::size_t k = 0; k < keys; ++k) {
        const std::size_t owner = ring.lookup(k);
        ASSERT_LT(owner, nodes.size());
        ++counts[owner];
    }
    // 64 vnodes per node keeps the split near 25% each; generous
    // bounds so the test pins the property, not the exact hash.
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        EXPECT_GT(counts[n], keys / 12) << "node " << n;
        EXPECT_LT(counts[n], keys / 2) << "node " << n;
    }
}

TEST(HashRing, LookupIsDeterministicAcrossInstances)
{
    const std::vector<std::string> nodes = {"a:1", "b:2", "c:3"};
    coord::HashRing r1(nodes, 32);
    coord::HashRing r2(nodes, 32);
    for (std::uint64_t k = 0; k < 4'096; ++k)
        EXPECT_EQ(r1.lookup(k), r2.lookup(k));
}

TEST(HashRing, ExcludingANodeMovesOnlyItsKeys)
{
    const std::vector<std::string> nodes = {"a:1", "b:2", "c:3",
                                            "d:4"};
    coord::HashRing ring(nodes, 64);
    const std::size_t dead = 1;
    const auto alive = [dead](std::size_t n) { return n != dead; };
    std::size_t moved = 0;
    std::size_t kept = 0;
    for (std::uint64_t k = 0; k < 20'000; ++k) {
        const std::size_t before = ring.lookup(k);
        const std::size_t after = ring.lookup(k, alive);
        ASSERT_NE(after, dead);
        if (before == dead) {
            ++moved; // must land somewhere else
        } else {
            // Minimal movement: a live node's keys never move.
            EXPECT_EQ(after, before) << "key " << k;
            ++kept;
        }
    }
    EXPECT_GT(moved, 0u);
    EXPECT_GT(kept, 0u);
}

TEST(HashRing, NoAcceptableNodeIsNpos)
{
    coord::HashRing ring({"a:1", "b:2"}, 16);
    EXPECT_EQ(ring.lookup(7, [](std::size_t) { return false; }),
              coord::HashRing::npos);
    EXPECT_EQ(coord::HashRing().lookup(7), coord::HashRing::npos);
}

// ---------------------------------------------------------------------
// Coordinator hooks (socket-free route() paths)
// ---------------------------------------------------------------------

TEST(CoordRoute, HealthzListsBackendStates)
{
    setQuiet(true);
    CoordFixture fx;
    auto [status, j] = call(fx.front, "GET", "/healthz");
    ASSERT_EQ(status, 200);
    EXPECT_EQ(j.find("status")->asString(), "ok");
    EXPECT_EQ(j.find("mode")->asString(), "coord");
    const Json *backends = j.find("backends");
    ASSERT_NE(backends, nullptr);
    ASSERT_EQ(backends->size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(backends->at(i).find("state")->asString(), "up");
        EXPECT_FALSE(
            backends->at(i).find("address")->asString().empty());
    }
}

TEST(CoordRoute, SimulateIsProxiedToItsRingOwner)
{
    setQuiet(true);
    CoordFixture fx;
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/simulate";
    req.version = "HTTP/1.1";
    req.body = "{\"workload\": \"route\", \"max_insts\": 30000, "
               "\"cache\": false}";
    std::string rid;
    HttpResponse resp = fx.front.route(req, rid);
    ASSERT_EQ(resp.status, 200);
    const Json j = Json::parse(resp.body);
    EXPECT_EQ(j.find("state")->asString(), "done");
    bool sawBackend = false;
    for (const auto &[name, value] : resp.headers) {
        if (name == "X-Backend") {
            sawBackend = true;
            EXPECT_NE(value.find("127.0.0.1:"), std::string::npos);
        }
    }
    EXPECT_TRUE(sawBackend);
}

TEST(CoordRoute, BufferedSweepReportsItsShardCount)
{
    setQuiet(true);
    CoordFixture fx;
    const std::size_t points = 12;
    auto [status, j] =
        call(fx.front, "POST", "/v1/sweep",
             sweepBody(points, 20'000, /*stream=*/false));
    ASSERT_EQ(status, 200);
    const Json *result = j.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("total")->asNumber(),
              static_cast<double>(points));
    EXPECT_EQ(result->find("cancelled")->asNumber(), 0.0);
    ASSERT_NE(result->find("points"), nullptr);
    EXPECT_EQ(result->find("points")->size(), points);

    // The shard count must equal what the ring actually spreads the
    // matrix over (ports are kernel-assigned, so compute it locally).
    const coord::HashRing ring = fx.localRing();
    std::vector<bool> owns(2, false);
    for (const service::PointSpec &s : sweepSpecs(points, 20'000))
        owns[ring.lookup(service::pointShardKey(s))] = true;
    const double expected = (owns[0] ? 1.0 : 0.0) + (owns[1] ? 1.0 : 0.0);
    EXPECT_EQ(result->find("shards")->asNumber(), expected);
}

TEST(CoordRoute, MetricsAggregatesBackendSeries)
{
    setQuiet(true);
    CoordFixture fx;
    std::string rid;
    HttpRequest req;
    req.method = "GET";
    req.target = "/metrics";
    req.version = "HTTP/1.1";
    const HttpResponse resp = fx.front.route(req, rid);
    ASSERT_EQ(resp.status, 200);
    EXPECT_NE(
        resp.body.find("dieirb_coord_backends{state=\"up\"} 2"),
        std::string::npos);
    // Backend series re-exported under dieirb_backend_* with a
    // backend label naming the scraped instance.
    EXPECT_NE(resp.body.find("dieirb_backend_queue_depth{backend="
                             "\"127.0.0.1:"),
              std::string::npos);
    EXPECT_NE(resp.body.find("# TYPE dieirb_backend_queue_depth gauge"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end sharded sweeps over real sockets
// ---------------------------------------------------------------------

TEST(CoordSocket, ShardedStreamIsCompleteOrderedAndDeterministic)
{
    setQuiet(true);
    CoordFixture fx;
    fx.front.start();
    // Big enough a budget that every point completes with status ok
    // (tiny budgets report "timeout", which is fine but not what this
    // test pins down).
    const std::size_t points = 8;
    const std::string wire = postCloseWire(
        "/v1/sweep", sweepBody(points, 400'000, /*stream=*/true));

    std::string first;
    for (int run = 0; run < 2; ++run) {
        const int fd = connectTo(fx.front.port());
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
                  static_cast<ssize_t>(wire.size()));
        const Dechunked got = dechunk(readToEof(fd));
        ::close(fd);
        ASSERT_EQ(got.status, 200);
        ASSERT_TRUE(got.complete);
        expectCleanStream(got.body, points);
        if (run == 0)
            first = got.body;
        else
            EXPECT_EQ(got.body, first); // byte-identical reruns
    }
}

TEST(CoordSocket, BackendDrainMidSweepReshardsAndStaysByteIdentical)
{
    setQuiet(true);
    CoordFixture fx;
    fx.front.start();
    // Heavier points: the sweep must still be in flight when the
    // backend drains (~100ms+ per point on one backend worker).
    const std::size_t points = 8;
    const std::uint64_t insts = 400'000;
    const std::string wire = postCloseWire(
        "/v1/sweep", sweepBody(points, insts, /*stream=*/true));

    // Reference run with both backends healthy.
    int fd = connectTo(fx.front.port());
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    const Dechunked reference = dechunk(readToEof(fd));
    ::close(fd);
    ASSERT_EQ(reference.status, 200);
    ASSERT_TRUE(reference.complete);
    expectCleanStream(reference.body, points);

    // Drain the owner of the LAST point once the first line lands, so
    // at least one of its points is still unfinished and must reshard
    // onto the survivor.
    const coord::HashRing ring = fx.localRing();
    const std::vector<service::PointSpec> specs =
        sweepSpecs(points, insts);
    const std::size_t victim =
        ring.lookup(service::pointShardKey(specs.back()));
    service::Server &doomed =
        victim == 0 ? fx.backend1 : fx.backend2;

    fd = connectTo(fx.front.port());
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    std::string raw;
    char buf[16384];
    bool drained = false;
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
        if (!drained && raw.find("\"ipc\"") != std::string::npos) {
            // First point line arrived: the sweep is mid-flight.
            doomed.shutdown(); // graceful drain, blocks until done
            drained = true;
        }
    }
    ::close(fd);
    ASSERT_TRUE(drained);

    const Dechunked got = dechunk(raw);
    ASSERT_EQ(got.status, 200);
    ASSERT_TRUE(got.complete)
        << "stream truncated after backend drain";
    expectCleanStream(got.body, points);
    EXPECT_EQ(got.body, reference.body)
        << "resharded merge diverged from the healthy run";
}
