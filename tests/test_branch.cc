/**
 * @file
 * Unit tests for the branch-prediction substrate: saturating counters,
 * bimodal/gshare/tournament predictors, BTB tagging, RAS behaviour, and
 * the BranchPredictor facade.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "common/logging.hh"
#include "vm/program.hh"

using namespace direb;

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter2 c(0);
    EXPECT_FALSE(c.taken());
    c.update(false);
    EXPECT_EQ(c.raw(), 0u); // saturates low
    c.update(true);
    c.update(true);
    EXPECT_TRUE(c.taken());
    c.update(true);
    c.update(true);
    EXPECT_EQ(c.raw(), 3u); // saturates high
}

TEST(SatCounter, HysteresisNeedsTwoFlips)
{
    SatCounter2 c(3);
    c.update(false);
    EXPECT_TRUE(c.taken()); // one not-taken is not enough
    c.update(false);
    EXPECT_FALSE(c.taken());
}

TEST(Bimodal, LearnsAlwaysTaken)
{
    BimodalPredictor p(64);
    const Addr pc = 0x1000;
    for (int i = 0; i < 4; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
}

TEST(Bimodal, SeparatePcsIndependent)
{
    BimodalPredictor p(64);
    for (int i = 0; i < 4; ++i) {
        p.update(0x1000, true);
        p.update(0x1004, false);
    }
    EXPECT_TRUE(p.predict(0x1000));
    EXPECT_FALSE(p.predict(0x1004));
}

TEST(Bimodal, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(BimodalPredictor p(100), FatalError);
}

TEST(Gshare, LearnsAlternatingPattern)
{
    // Bimodal cannot learn T,N,T,N...; gshare can via history. Drive it
    // the way the facade does: shift the prediction speculatively, train
    // at commit (here immediately, so spec == committed history).
    GsharePredictor g(1024, 8);
    bool dir = false;
    for (int i = 0; i < 200; ++i) {
        dir = !dir;
        g.notifySpeculative(g.predict(0x1000));
        g.update(0x1000, dir);
        g.restoreHistoryTo(g.history()); // resync (all "commits" done)
    }
    int correct = 0;
    for (int i = 0; i < 20; ++i) {
        dir = !dir;
        const bool pred = g.predict(0x1000);
        correct += pred == dir;
        g.notifySpeculative(pred);
        g.update(0x1000, dir);
        g.restoreHistoryTo(g.history());
    }
    EXPECT_GE(correct, 18);
}

TEST(Gshare, HistoryCheckpointRoundTrip)
{
    GsharePredictor g(256, 8);
    g.notifySpeculative(true);
    g.notifySpeculative(false);
    const std::uint64_t snap = g.snapshotHistory();
    g.notifySpeculative(true); // wrong-path pollution
    g.notifySpeculative(true);
    g.restoreHistoryTo(snap);
    EXPECT_EQ(g.snapshotHistory(), snap);
    EXPECT_EQ(snap & 3, 0b10u); // oldest..newest = taken, not-taken
}

TEST(Gshare, HistoryAdvances)
{
    GsharePredictor g(256, 4);
    EXPECT_EQ(g.history(), 0u);
    g.update(0x1000, true);
    g.update(0x1000, false);
    EXPECT_EQ(g.history() & 3, 2u); // ...10
}

TEST(Tournament, PicksTheBetterComponent)
{
    TournamentPredictor t(256, 256, 8, 256);
    // Alternating pattern: gshare should win the chooser over time.
    bool dir = false;
    for (int i = 0; i < 400; ++i) {
        dir = !dir;
        t.notifySpeculative(t.predict(0x2000));
        t.update(0x2000, dir);
        t.restoreHistoryTo(t.committedHistorySnapshot());
    }
    int correct = 0;
    for (int i = 0; i < 20; ++i) {
        dir = !dir;
        const bool pred = t.predict(0x2000);
        correct += pred == dir;
        t.notifySpeculative(pred);
        t.update(0x2000, dir);
        t.restoreHistoryTo(t.committedHistorySnapshot());
    }
    EXPECT_GE(correct, 18);
}

// ---------------------------------------------------------------------------
// BTB
// ---------------------------------------------------------------------------

TEST(Btb, MissWithoutEntry)
{
    Btb btb(64);
    Addr t;
    EXPECT_FALSE(btb.lookup(0x1000, t));
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb(64);
    btb.update(0x1000, 0x2000);
    Addr t = 0;
    ASSERT_TRUE(btb.lookup(0x1000, t));
    EXPECT_EQ(t, 0x2000u);
}

TEST(Btb, TagRejectsAliases)
{
    Btb btb(16); // index bits [5:2]
    btb.update(0x1000, 0x2000);
    Addr t;
    // Same index, different tag (offset by 16 entries * 4B).
    EXPECT_FALSE(btb.lookup(0x1000 + 16 * 4, t));
}

TEST(Btb, ConflictReplaces)
{
    Btb btb(16);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000 + 64, 0x3000); // same set, new tag
    Addr t;
    EXPECT_FALSE(btb.lookup(0x1000, t));
    ASSERT_TRUE(btb.lookup(0x1000 + 64, t));
    EXPECT_EQ(t, 0x3000u);
}

// ---------------------------------------------------------------------------
// RAS
// ---------------------------------------------------------------------------

TEST(Ras, LifoOrder)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, PopWhenEmptyReturnsZero)
{
    Ras ras(4);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowOverwritesOldest)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_TRUE(ras.empty());
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

TEST(BranchPredictorFacade, NonControlFallsThrough)
{
    Config cfg;
    BranchPredictor bp(cfg);
    const auto p = bp.predict(0x1000, makeR(Opcode::ADD, 1, 2, 3));
    EXPECT_FALSE(p.taken);
}

TEST(BranchPredictorFacade, JalIsAlwaysTakenWithExactTarget)
{
    Config cfg;
    BranchPredictor bp(cfg);
    const auto p = bp.predict(0x1000, makeJ(Opcode::JAL, 0, 16));
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x1000u + 64u);
}

TEST(BranchPredictorFacade, TakenBranchNeedsBtb)
{
    Config cfg;
    BranchPredictor bp(cfg);
    const Inst br = makeB(Opcode::BEQ, 1, 2, 16);
    // Train taken so the direction predictor says taken.
    for (int i = 0; i < 4; ++i)
        bp.update(0x1000, br, true, 0x1040);
    const auto p = bp.predict(0x1000, br);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x1040u);
}

TEST(BranchPredictorFacade, TakenPredictionWithoutBtbFallsThrough)
{
    Config cfg;
    cfg.set("bp.kind", "bimodal");
    BranchPredictor bp(cfg);
    const Inst br = makeB(Opcode::BNE, 1, 2, 16);
    // Bimodal initialises weakly not-taken (1); two taken updates flip
    // the counter without ever inserting a BTB entry... update() inserts
    // on taken, so force the no-BTB case by a fresh predictor whose
    // counters we bias via a different PC mapping to the same counter:
    // simplest: predict on a PC that aliases the trained counter but has
    // a different BTB tag.
    for (int i = 0; i < 4; ++i)
        bp.update(0x1000, br, true, 0x1040);
    const Addr alias = 0x1000 + 2048 * 4; // same bimodal counter, new tag
    const auto p = bp.predict(alias, br);
    EXPECT_FALSE(p.taken); // direction said taken, BTB had no target
    EXPECT_TRUE(p.btbMiss);
}

TEST(BranchPredictorFacade, ReturnUsesRas)
{
    Config cfg;
    BranchPredictor bp(cfg);
    // call: jal ra, ...
    bp.predict(0x1000, makeJ(Opcode::JAL, regRa, 100));
    // ret: jalr x0, ra, 0
    const auto p = bp.predict(0x5000, makeI(Opcode::JALR, 0, regRa, 0));
    EXPECT_TRUE(p.fromRas);
    EXPECT_EQ(p.target, 0x1004u);
}

TEST(BranchPredictorFacade, UnknownKindIsFatal)
{
    Config cfg;
    cfg.set("bp.kind", "oracle");
    EXPECT_THROW(BranchPredictor bp(cfg), FatalError);
}
