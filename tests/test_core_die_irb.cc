/**
 * @file
 * Tests for DIE-IRB mode: reuse-hit ALU bypass, correctness under reuse,
 * the no-issue-bandwidth property, primary-only forwarding, port
 * pressure, and the headline property that the IRB narrows the DIE-SIE
 * gap on reuse-friendly code without ever breaking architectural state.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

/**
 * A loop whose body re-executes with identical operand values every
 * iteration (the counter lives in x5 but the reusable block re-seeds its
 * operands): near-total reuse for the duplicate stream.
 */
const char *reuseLoop = R"(
.text
        li x5, 2000
loop:   li x10, 7
        li x11, 9
        add x12, x10, x11
        xor x13, x10, x11
        sub x14, x12, x13
        and x15, x12, x14
        or  x16, x15, x10
        add x17, x16, x11
        addi x5, x5, -1
        bnez x5, loop
        putint x17
        halt
)";

/** A loop with zero operand repetition (everything tracks the counter). */
const char *noReuseLoop = R"(
.text
        li x5, 2000
        li x6, 0
loop:   add x6, x6, x5
        xor x7, x6, x5
        add x8, x7, x6
        sub x9, x8, x5
        addi x5, x5, -1
        bnez x5, loop
        putint x8
        halt
)";

harness::SimResult
runMode(const char *src, const std::string &mode,
        Config cfg = Config())
{
    cfg.set("core.mode", mode);
    const Program prog = assemble(src, "t");
    return harness::run(prog, cfg);
}

} // namespace

TEST(CoreDieIrb, GoldenOnReuseHeavyCode)
{
    const Program prog = assemble(reuseLoop, "r");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("die-irb"));
    EXPECT_EQ(err, "") << err;
}

TEST(CoreDieIrb, ReuseHitsBypassTheAlus)
{
    const auto r = runMode(reuseLoop, "die-irb");
    EXPECT_GT(r.stat("core.bypassed_alu"), 10000.0);
    // Bypassed duplicates must not show up at functional units:
    // issued + bypassed ~= dispatched (minus squashes).
    EXPECT_LT(r.stat("core.fu.issued"),
              r.stat("core.dispatched") - r.stat("core.bypassed_alu") +
                  r.stat("core.wrong_path") + 1000);
}

TEST(CoreDieIrb, NoReuseNoBypass)
{
    const auto r = runMode(noReuseLoop, "die-irb");
    // PC hits galore, but the reuse test keeps failing.
    EXPECT_GT(r.stat("core.irb.pc_hits"), 5000.0);
    EXPECT_LT(r.stat("core.bypassed_alu"),
              0.15 * r.stat("core.irb.pc_hits"));
}

TEST(CoreDieIrb, FasterThanDieOnReuseHeavyCode)
{
    Config narrow;
    narrow.setInt("fu.intalu", 2); // sharpen the ALU bottleneck
    const auto die = runMode(reuseLoop, "die", narrow);
    const auto irb = runMode(reuseLoop, "die-irb", narrow);
    EXPECT_GT(irb.ipc(), die.ipc() * 1.1);
}

TEST(CoreDieIrb, NeverMeaningfullySlowerThanDie)
{
    for (const char *src : {reuseLoop, noReuseLoop}) {
        const auto die = runMode(src, "die");
        const auto irb = runMode(src, "die-irb");
        EXPECT_GE(irb.ipc(), die.ipc() * 0.98);
    }
}

TEST(CoreDieIrb, BoundedBySie)
{
    const auto sie = runMode(reuseLoop, "sie");
    const auto irb = runMode(reuseLoop, "die-irb");
    EXPECT_LE(irb.ipc(), sie.ipc() * 1.001);
}

TEST(CoreDieIrb, ChecksStillCoverEveryInstruction)
{
    const auto r = runMode(reuseLoop, "die-irb");
    EXPECT_EQ(r.stat("core.checker.checks"),
              static_cast<double>(r.core.archInsts));
    EXPECT_EQ(r.stat("core.checker.mismatches"), 0.0);
}

TEST(CoreDieIrb, PortDropsUnderWideReuse)
{
    // Only 4R+2RW lookups per cycle: a wide front end generates drops.
    Config cfg;
    cfg.setInt("irb.read_ports", 1);
    cfg.setInt("irb.rw_ports", 0);
    const auto r = runMode(reuseLoop, "die-irb", cfg);
    EXPECT_GT(r.stat("core.irb.lookup_port_drops"), 1000.0);
    // Drops degrade but never break: still architecturally correct.
    EXPECT_EQ(r.output, runMode(reuseLoop, "sie").output);
}

TEST(CoreDieIrb, FewerPortsMeansFewerBypasses)
{
    Config full;
    Config starved;
    starved.setInt("irb.read_ports", 1);
    starved.setInt("irb.rw_ports", 0);
    starved.setInt("irb.write_ports", 1);
    const auto f = runMode(reuseLoop, "die-irb", full);
    const auto s = runMode(reuseLoop, "die-irb", starved);
    EXPECT_GT(f.stat("core.bypassed_alu"), s.stat("core.bypassed_alu"));
}

TEST(CoreDieIrb, TinyIrbStillCorrect)
{
    Config cfg;
    cfg.setInt("irb.entries", 4);
    const Program prog = assemble(reuseLoop, "r");
    cfg.set("core.mode", "die-irb");
    const std::string err = harness::goldenCheck(prog, cfg);
    EXPECT_EQ(err, "") << err;
}

TEST(CoreDieIrb, BiggerIrbNeverHurtsHitRate)
{
    // Kernel with a larger static footprint than a tiny IRB.
    const Program prog = workloads::build("parse", 1);
    double prev_hits = -1.0;
    for (const int entries : {16, 128, 1024}) {
        Config cfg = harness::baseConfig("die-irb");
        cfg.setInt("irb.entries", entries);
        const auto r = harness::run(prog, cfg);
        EXPECT_GE(r.stat("core.irb.reuse_hits"), prev_hits);
        prev_hits = r.stat("core.irb.reuse_hits");
    }
}

TEST(CoreDieIrb, LoadsReuseAddressGeneration)
{
    // Fixed-address loads in a loop: the duplicate's address calc reuses.
    const char *loads = R"(
.text
        la x10, buf
        li x5, 1500
loop:   ld x6, 0(x10)
        ld x7, 8(x10)
        add x8, x6, x7
        addi x5, x5, -1
        bnez x5, loop
        putint x8
        halt
.data
buf: .dword 3, 4
)";
    const auto r = runMode(loads, "die-irb");
    EXPECT_GT(r.stat("core.bypassed_alu"), 2000.0);
    const Program prog = assemble(loads, "l");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("die-irb"));
    EXPECT_EQ(err, "") << err;
}

TEST(CoreDieIrb, JumpTargetsAlwaysReuse)
{
    // Unconditional jumps have constant operands: their duplicates should
    // hit from the second execution on.
    const char *jumps = R"(
.text
        li x5, 1000
loop:   j mid
mid:    j tail
tail:   addi x5, x5, -1
        bnez x5, loop
        halt
)";
    const auto r = runMode(jumps, "die-irb");
    EXPECT_GT(r.stat("core.irb.reuse_hits"), 1800.0);
}

TEST(CoreDieIrb, RecoveryViaDuplicateBranchWorks)
{
    // Mispredict-heavy code where branch duplicates may resolve via the
    // IRB: everything must stay architecturally exact.
    const char *branchy = R"(
.text
        li x5, 1500
        li x6, 777
        li x7, 1103515245
        li x9, 0
loop:   mul x6, x6, x7
        addi x6, x6, 4057
        srli x8, x6, 16
        andi x8, x8, 1
        beqz x8, skip
        addi x9, x9, 1
skip:   addi x5, x5, -1
        bnez x5, loop
        putint x9
        halt
)";
    const Program prog = assemble(branchy, "b");
    const std::string err =
        harness::goldenCheck(prog, harness::baseConfig("die-irb"));
    EXPECT_EQ(err, "") << err;
}

TEST(CoreDieIrb, KernelsRunGoldenUnderIrb)
{
    for (const char *w : {"compress", "parse", "neural"}) {
        const Program prog = workloads::build(w, 1);
        const std::string err =
            harness::goldenCheck(prog, harness::baseConfig("die-irb"));
        EXPECT_EQ(err, "") << w << ": " << err;
    }
}

TEST(CoreDieIrb, RecoversIpcOnTheSuite)
{
    // The headline property on two reuse-friendly kernels: DIE-IRB sits
    // strictly between DIE and SIE.
    for (const char *w : {"compress", "raster"}) {
        const auto sie = harness::runWorkload(w, harness::baseConfig("sie"));
        const auto die = harness::runWorkload(w, harness::baseConfig("die"));
        const auto irb =
            harness::runWorkload(w, harness::baseConfig("die-irb"));
        EXPECT_GT(irb.ipc(), die.ipc() * 1.02) << w;
        EXPECT_LT(irb.ipc(), sie.ipc()) << w;
    }
}
