/**
 * @file
 * Differential test for the back-end scheduler implementations: for every
 * kernel workload and every execution mode, the incremental ready_list
 * scheduler must reproduce the reference scan scheduler bit-for-bit —
 * same cycle count, same IPC, and the same value for every statistic the
 * core and its children expose (issue stalls, load blocks/forwards, IRB
 * hit/drop counters, cache and predictor counts, ...). Any divergence in
 * what the hot-loop refactor considers "actionable" shows up here as a
 * named counter mismatch.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

harness::SimResult
runSched(const std::string &kernel, const std::string &mode,
         const std::string &scheduler)
{
    Config cfg = harness::baseConfig(mode);
    cfg.set("core.scheduler", scheduler);
    return harness::runWorkload(kernel, cfg);
}

void
expectIdentical(const std::string &kernel, const std::string &mode)
{
    const harness::SimResult scan = runSched(kernel, mode, "scan");
    const harness::SimResult list = runSched(kernel, mode, "ready_list");

    EXPECT_EQ(scan.core.cycles, list.core.cycles)
        << kernel << "/" << mode;
    EXPECT_EQ(scan.core.archInsts, list.core.archInsts)
        << kernel << "/" << mode;
    EXPECT_EQ(scan.core.stop, list.core.stop) << kernel << "/" << mode;
    EXPECT_EQ(scan.ipc(), list.ipc()) << kernel << "/" << mode;
    EXPECT_EQ(scan.output, list.output) << kernel << "/" << mode;

    ASSERT_EQ(scan.stats.size(), list.stats.size())
        << kernel << "/" << mode << ": stat name sets differ";
    for (const auto &[name, value] : scan.stats) {
        const auto it = list.stats.find(name);
        ASSERT_NE(it, list.stats.end())
            << kernel << "/" << mode << ": missing stat " << name;
        EXPECT_EQ(value, it->second)
            << kernel << "/" << mode << ": stat " << name;
    }
}

class SchedulerDiff : public ::testing::TestWithParam<std::string>
{};

} // namespace

TEST_P(SchedulerDiff, SieMatchesScan) { expectIdentical(GetParam(), "sie"); }

TEST_P(SchedulerDiff, DieMatchesScan) { expectIdentical(GetParam(), "die"); }

TEST_P(SchedulerDiff, DieIrbMatchesScan)
{
    expectIdentical(GetParam(), "die-irb");
}

// The ablation configs route the reuse test through the issue loop /
// per-stream dataflow; exercise them on a reuse-friendly kernel so the
// alternative scheduling paths actually run.
TEST(SchedulerDiffAblations, IrbConsumesIssueSlot)
{
    Config scan = harness::baseConfig("die-irb");
    scan.set("irb.consumes_issue_slot", "true");
    scan.set("core.scheduler", "scan");
    Config list = harness::baseConfig("die-irb");
    list.set("irb.consumes_issue_slot", "true");
    list.set("core.scheduler", "ready_list");
    const auto a = harness::runWorkload("parse", scan);
    const auto b = harness::runWorkload("parse", list);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(SchedulerDiffAblations, DupOwnDataflow)
{
    Config scan = harness::baseConfig("die-irb");
    scan.set("dieirb.dup_own_dataflow", "true");
    scan.set("core.scheduler", "scan");
    Config list = harness::baseConfig("die-irb");
    list.set("dieirb.dup_own_dataflow", "true");
    list.set("core.scheduler", "ready_list");
    const auto a = harness::runWorkload("compress", scan);
    const auto b = harness::runWorkload("compress", list);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.stats, b.stats);
}

// Ring-wraparound stress: tiny and non-power-of-two RUU sizes make the
// power-of-two ring wrap every few cycles (bit_ceil pads 6 -> 8,
// 10 -> 16, 48 -> 64, leaving dead slots between tail and head), while
// branchy kernels squash mid-wrap and immediately reuse the freed slots
// under new sequence numbers. A scheduler reference surviving a squash
// past the seq-guard, or a walk that crosses the ring seam wrongly,
// diverges from the scan reference here.
TEST(SchedulerDiffRingWrap, TinyRuuSizesStayBitIdentical)
{
    for (const char *kernel : {"compress", "pointer"}) {
        for (const char *mode : {"sie", "die", "die-irb"}) {
            for (const char *ruu : {"6", "10", "48"}) {
                SCOPED_TRACE(std::string(kernel) + "/" + mode +
                             "/ruu=" + ruu);
                Config scan = harness::baseConfig(mode);
                scan.set("ruu.size", ruu);
                scan.set("core.scheduler", "scan");
                Config list = harness::baseConfig(mode);
                list.set("ruu.size", ruu);
                list.set("core.scheduler", "ready_list");
                const auto a = harness::runWorkload(kernel, scan);
                const auto b = harness::runWorkload(kernel, list);
                EXPECT_EQ(a.core.cycles, b.core.cycles);
                EXPECT_EQ(a.core.archInsts, b.core.archInsts);
                EXPECT_EQ(a.stats, b.stats);
                EXPECT_EQ(a.output, b.output);
            }
        }
    }
}

// SIE has no pairing constraint, so odd sizes are legal there — cover
// the maximally-awkward ring (size 5 in an 8-slot ring).
TEST(SchedulerDiffRingWrap, OddRuuSizeSieStaysBitIdentical)
{
    Config scan = harness::baseConfig("sie");
    scan.set("ruu.size", "5");
    scan.set("core.scheduler", "scan");
    Config list = harness::baseConfig("sie");
    list.set("ruu.size", "5");
    list.set("core.scheduler", "ready_list");
    const auto a = harness::runWorkload("sort", scan);
    const auto b = harness::runWorkload("sort", list);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.output, b.output);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SchedulerDiff,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &w : workloads::list())
            names.push_back(w.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });
