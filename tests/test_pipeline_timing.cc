/**
 * @file
 * Cycle-level timing tests for the out-of-order core: these pin down the
 * latencies and bandwidths the figure benches depend on (back-to-back
 * dependent issue, FU operation latencies, load-to-use time, misprediction
 * penalties, commit bandwidth) by measuring cycle deltas between
 * structurally identical programs.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/runner.hh"

using namespace direb;

namespace
{

/** Cycles to run @p src under @p cfg. */
Cycle
cyclesFor(const std::string &src, Config cfg = harness::baseConfig("sie"))
{
    const Program prog = assemble(src, "t");
    OooCore core(prog, cfg);
    return core.run().cycles;
}

/**
 * A warm loop whose body is @p n copies of @p inst_line (same dest/src =
 * a serial chain) plus fixed overhead; loop-based so the I-cache stays
 * warm and marginal cost per instruction is pure issue/latency.
 */
std::string
chainLoop(const std::string &inst_line, int n, int iters,
          const std::string &pre = "")
{
    std::string s = ".text\nli x6, 1\nli x7, 3\n" + pre + "li x29, " +
                    std::to_string(iters) + "\nloop:\n";
    for (int i = 0; i < n; ++i)
        s += inst_line + "\n";
    s += "addi x29, x29, -1\nbnez x29, loop\nhalt\n";
    return s;
}

/** Marginal cycles per chained instruction, cold effects differenced out. */
double
perInstCost(const std::string &inst_line, int n_small, int n_big,
            int iters, const std::string &pre = "")
{
    const Cycle a = cyclesFor(chainLoop(inst_line, n_small, iters, pre));
    const Cycle b = cyclesFor(chainLoop(inst_line, n_big, iters, pre));
    return static_cast<double>(b - a) /
           (static_cast<double>(n_big - n_small) * iters);
}

} // namespace

TEST(PipelineTiming, DependentAddsRunOnePerCycle)
{
    EXPECT_NEAR(perInstCost("add x6, x6, x7", 8, 24, 300), 1.0, 0.06);
}

TEST(PipelineTiming, MulChainRunsAtThreeCycles)
{
    EXPECT_NEAR(perInstCost("mul x6, x6, x7", 4, 12, 300), 3.0, 0.1);
}

TEST(PipelineTiming, FpAddChainRunsAtTwoCycles)
{
    const std::string pre = "fcvtdl f1, x6\nfcvtdl f2, x7\n";
    EXPECT_NEAR(perInstCost("fadd f1, f1, f2", 4, 12, 300, pre), 2.0,
                0.1);
}

TEST(PipelineTiming, NonPipelinedDivChainRunsAtTwelve)
{
    const std::string pre = "fcvtdl f1, x6\nfcvtdl f2, x7\n";
    EXPECT_NEAR(perInstCost("fdiv f1, f1, f2", 2, 6, 150, pre), 12.0,
                0.4);
}

TEST(PipelineTiming, IndependentDivsBoundByUnitOccupancy)
{
    // One FpDiv unit, issue latency 12: independent divides cannot beat
    // 12 cycles each either.
    const std::string pre = "fcvtdl f1, x6\nfcvtdl f2, x7\n";
    const auto body = [&](int n) {
        std::string s;
        for (int i = 0; i < n; ++i)
            s += "fdiv f" + std::to_string(3 + (i % 8)) + ", f1, f2\n";
        return s;
    };
    const Cycle a = cyclesFor(chainLoop(body(2), 1, 150, pre));
    const Cycle b = cyclesFor(chainLoop(body(6), 1, 150, pre));
    EXPECT_NEAR((b - a) / (4.0 * 150), 12.0, 0.4);
}

TEST(PipelineTiming, LoadToUseLatencyIsCacheHit)
{
    // Chained load->address: each link costs addrgen(1) + L1 hit(3).
    // The chain follows a self-pointer so the line stays resident.
    const auto prog = [&](int n) {
        std::string s = ".text\nla x6, p\nla x5, p\nsd x5, 0(x5)\n"
                        "li x29, 200\nloop:\n";
        for (int i = 0; i < n; ++i)
            s += "ld x6, 0(x6)\n";
        s += "addi x29, x29, -1\nbnez x29, loop\nhalt\n"
             ".data\np: .dword 0\n";
        return s;
    };
    const Cycle a = cyclesFor(prog(4));
    const Cycle b = cyclesFor(prog(12));
    const double per_load = (b - a) / (8.0 * 200);
    EXPECT_GE(per_load, 3.8); // 1 (addr gen) + 3 (L1 hit)
    EXPECT_LE(per_load, 4.4);
}

TEST(PipelineTiming, IssueWidthCapsIndependentWork)
{
    // 16 independent chains, 1-cycle ops, plenty of ALUs: width=2 vs
    // width=8 must scale cycles by ~4x on the loop body.
    std::string body = ".text\nli x29, 2000\nloop:\n";
    for (int r = 10; r < 26; ++r)
        body += "addi x" + std::to_string(r) + ", x" +
                std::to_string(r) + ", 1\n";
    body += "addi x29, x29, -1\nbnez x29, loop\nhalt\n";

    Config wide = harness::baseConfig("sie");
    wide.setInt("fu.intalu", 16);
    Config narrow = harness::baseConfig("sie");
    narrow.setInt("fu.intalu", 16);
    narrow.setInt("width.issue", 2);

    const Cycle cw = cyclesFor(body, wide);
    const Cycle cn = cyclesFor(body, narrow);
    EXPECT_GT(static_cast<double>(cn) / cw, 2.5);
}

TEST(PipelineTiming, AluCountCapsIndependentWork)
{
    std::string body = ".text\nli x29, 2000\nloop:\n";
    for (int r = 10; r < 26; ++r)
        body += "addi x" + std::to_string(r) + ", x" +
                std::to_string(r) + ", 1\n";
    body += "addi x29, x29, -1\nbnez x29, loop\nhalt\n";

    Config four = harness::baseConfig("sie");
    Config one = harness::baseConfig("sie");
    one.setInt("fu.intalu", 1);
    const Cycle c4 = cyclesFor(body, four);
    const Cycle c1 = cyclesFor(body, one);
    EXPECT_GT(static_cast<double>(c1) / c4, 2.5);
}

TEST(PipelineTiming, MispredictionPenaltyVisible)
{
    // Same dynamic instruction stream; one version's branch alternates
    // (gshare learns it), the other is LCG-random (it cannot).
    const char *predictable = R"(
.text
        li x29, 4000
        li x9, 0
loop:   andi x8, x29, 1
        beqz x8, skip
        addi x9, x9, 1
skip:   addi x29, x29, -1
        bnez x29, loop
        halt
)";
    const char *random = R"(
.text
        li x29, 4000
        li x6, 777
        li x7, 1103515245
        li x9, 0
loop:   mul x6, x6, x7
        addi x6, x6, 4057
        srli x8, x6, 16
        andi x8, x8, 1
        beqz x8, skip
        addi x9, x9, 1
skip:   addi x29, x29, -1
        bnez x29, loop
        halt
)";
    const Program pp = assemble(predictable, "p");
    const Program pr = assemble(random, "r");
    OooCore cp(pp, harness::baseConfig("sie"));
    OooCore cr(pr, harness::baseConfig("sie"));
    const CoreResult rp = cp.run();
    const CoreResult rr = cr.run();
    // Random version has 3 extra insts/iter but much lower IPC.
    EXPECT_GT(rp.ipc, rr.ipc * 1.3);
}

TEST(PipelineTiming, CommitBandwidthHalvedUnderDie)
{
    // Fully parallel code with abundant ALUs: SIE commits ~8 entries =
    // 8 arch insts/cycle; DIE commits ~8 entries = 4 arch insts/cycle.
    std::string body = ".text\nli x29, 4000\nloop:\n";
    for (int r = 10; r < 24; ++r)
        body += "addi x" + std::to_string(r) + ", x" +
                std::to_string(r) + ", 1\n";
    body += "addi x29, x29, -1\nbnez x29, loop\nhalt\n";

    Config sie = harness::baseConfig("sie");
    sie.setInt("fu.intalu", 16);
    Config die = harness::baseConfig("die");
    die.setInt("fu.intalu", 16);
    die.setInt("fu.intmul", 8);

    const Cycle cs = cyclesFor(body, sie);
    const Cycle cd = cyclesFor(body, die);
    const double ratio = static_cast<double>(cd) / cs;
    EXPECT_GT(ratio, 1.7);
    EXPECT_LT(ratio, 2.3);
}

TEST(PipelineTiming, TickIsDeterministic)
{
    const Program prog =
        assemble(chainLoop("add x6, x6, x7", 10, 50), "t");
    OooCore a(prog, harness::baseConfig("die-irb"));
    OooCore b(prog, harness::baseConfig("die-irb"));
    for (int i = 0; i < 500 && !a.done() && !b.done(); ++i) {
        a.tick();
        b.tick();
        ASSERT_EQ(a.committedArchInsts(), b.committedArchInsts());
        ASSERT_EQ(a.cycle(), b.cycle());
    }
}

TEST(PipelineTiming, ReuseHitShortensDupCompletion)
{
    // With one ALU and a reuse-heavy body, DIE-IRB needs far fewer ALU
    // issues than DIE; measure via the fu.issued counter per committed
    // entry.
    const char *body = R"(
.text
        li x29, 1500
loop:   li x10, 5
        li x11, 6
        add x12, x10, x11
        xor x13, x10, x11
        addi x29, x29, -1
        bnez x29, loop
        halt
)";
    const Program prog = assemble(body, "t");
    Config die = harness::baseConfig("die");
    Config irb = harness::baseConfig("die-irb");
    const auto rd = harness::run(prog, die);
    const auto ri = harness::run(prog, irb);
    EXPECT_LT(ri.stat("core.fu.issued"), 0.8 * rd.stat("core.fu.issued"));
}
