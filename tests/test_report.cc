/**
 * @file
 * Tests for the bench reporting layer: Table rendering (including the
 * single-column edge case), the mean/geomean helpers (geomean must skip
 * non-positive entries instead of aborting mid-report), the Json value
 * builder, writeJsonReport, and the hardened Json::parse (depth limit,
 * duplicate keys, trailing garbage, random-mutation robustness).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "harness/report.hh"

using namespace direb;
using harness::Json;
using harness::Table;

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "ipc"});
    t.row().cell("compress").num(1.5, 2);
    t.row().cell("rt").num(10.25, 2);

    const std::string out = t.render();
    std::istringstream lines(out);
    std::string header, rule, r1, r2;
    std::getline(lines, header);
    std::getline(lines, rule);
    std::getline(lines, r1);
    std::getline(lines, r2);

    EXPECT_EQ(header, "name        ipc");
    EXPECT_EQ(rule, std::string(header.size(), '-'));
    EXPECT_EQ(r1, "compress   1.50");
    EXPECT_EQ(r2, "rt        10.25");
}

TEST(Table, SingleColumnRenders)
{
    Table t({"only"});
    t.row().cell("a");
    t.row().cell("value");

    const std::string out = t.render();
    EXPECT_EQ(out, "only\n-----\na\nvalue\n");
}

TEST(Table, ShortRowsPadWithEmptyCells)
{
    Table t({"a", "b", "c"});
    t.row().cell("x"); // deliberately short
    const std::string out = t.render();
    EXPECT_NE(out.find("x"), std::string::npos);
    // Three lines: header, rule, row.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Table, PercentCells)
{
    Table t({"w", "frac"});
    t.row().cell("k").pct(0.1234, 1);
    EXPECT_NE(t.render().find("12.3%"), std::string::npos);
}

// ---------------------------------------------------------------------------
// mean / geomean
// ---------------------------------------------------------------------------

TEST(Mean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(harness::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(harness::mean({2.0, 4.0}), 3.0);
}

TEST(Geomean, PositiveValues)
{
    EXPECT_NEAR(harness::geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(harness::geomean({3.0}), 3.0, 1e-12);
}

TEST(Geomean, SkipsNonPositiveEntries)
{
    // A timed-out sweep point yields 0 IPC; geomean must skip it and
    // average the rest rather than returning 0 or aborting.
    EXPECT_NEAR(harness::geomean({2.0, 0.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(harness::geomean({-1.0, 5.0}), 5.0, 1e-12);
    const double nan = std::nan("");
    EXPECT_NEAR(harness::geomean({nan, 7.0}), 7.0, 1e-12);
}

TEST(Geomean, AllSkippedIsZeroNotCrash)
{
    EXPECT_DOUBLE_EQ(harness::geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(harness::geomean({0.0, -3.0}), 0.0);
}

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(Json, ScalarDump)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(std::uint64_t(1) << 40).dump(), "1099511627776");
    EXPECT_EQ(Json(1.5).dump(), "1.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersPrintWithoutFraction)
{
    // An int-sourced number must not pick up a ".0" or lose precision.
    EXPECT_EQ(Json(std::int64_t(123456789012345)).dump(),
              "123456789012345");
    EXPECT_EQ(Json(-7).dump(), "-7");
}

TEST(Json, NanAndInfBecomeNull)
{
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
    EXPECT_EQ(Json(INFINITY).dump(), "null");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\nd\te").dump(),
              "\"a\\\"b\\\\c\\nd\\te\"");
    EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json o = Json::object();
    o.set("z", 1).set("a", 2).set("m", 3);
    EXPECT_EQ(o.dump(0), "{\"z\": 1,\"a\": 2,\"m\": 3}");
    EXPECT_EQ(o.size(), 3u);

    o.set("a", 9); // replace in place, not append
    EXPECT_EQ(o.dump(0), "{\"z\": 1,\"a\": 9,\"m\": 3}");
    EXPECT_EQ(o.size(), 3u);
}

TEST(Json, NestedStructures)
{
    Json root = Json::object();
    root.set("rows", Json::array()
                         .push(Json::object().set("ipc", 1.25))
                         .push(Json::object().set("ipc", 2)));
    root.set("empty_obj", Json::object());
    root.set("empty_arr", Json::array());
    EXPECT_EQ(root.dump(0),
              "{\"rows\": [{\"ipc\": 1.25},{\"ipc\": 2}],"
              "\"empty_obj\": {},\"empty_arr\": []}");
}

TEST(Json, IndentedDumpIsStable)
{
    Json o = Json::object();
    o.set("k", Json::array().push(1).push(2));
    EXPECT_EQ(o.dump(2), "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
}

TEST(Json, WriteReportRoundTrip)
{
    Json root = Json::object();
    root.set("bench", "unit-test");
    root.set("values", Json::array().push(1).push(2.5).push("three"));

    const std::string path = "test_report_roundtrip.json";
    harness::writeJsonReport(path, root);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), root.dump(2) + "\n");
    std::remove(path.c_str());
}

TEST(Json, WriteReportUnwritablePathIsFatal)
{
    EXPECT_THROW(
        harness::writeJsonReport("/no/such/dir/x.json", Json::object()),
        FatalError);
}

// ---------------------------------------------------------------------------
// Json::parse hardening (untrusted input: the HTTP service feeds it
// request bodies straight off the wire)
// ---------------------------------------------------------------------------

TEST(JsonParse, RoundTripsDumpedValues)
{
    Json root = Json::object();
    root.set("name", "route/die-irb");
    root.set("ipc", 1.25);
    root.set("ok", true);
    root.set("rows", Json::array().push(1).push("two"));
    const Json back = Json::parse(root.dump(2));
    EXPECT_EQ(back.dump(2), root.dump(2));
}

TEST(JsonParse, RejectsTrailingGarbage)
{
    EXPECT_THROW(Json::parse("{\"a\": 1} {\"b\": 2}"), FatalError);
    EXPECT_THROW(Json::parse("[1, 2]x"), FatalError);
    EXPECT_NO_THROW(Json::parse("{\"a\": 1}  \n")); // whitespace is fine
}

TEST(JsonParse, RejectsDuplicateObjectKeys)
{
    EXPECT_THROW(Json::parse("{\"a\": 1, \"a\": 2}"), FatalError);
    EXPECT_THROW(Json::parse("{\"x\": {\"a\": 1, \"a\": 1}}"),
                 FatalError);
    // Same key at different nesting levels is legal.
    EXPECT_NO_THROW(Json::parse("{\"a\": {\"a\": 1}}"));
}

TEST(JsonParse, BoundsNestingDepth)
{
    const auto nested = [](int n) {
        return std::string(n, '[') + std::string(n, ']');
    };
    EXPECT_NO_THROW(Json::parse(nested(64)));
    EXPECT_THROW(Json::parse(nested(65)), FatalError);
    // A hostile deep nest must die on the limit, not the stack.
    EXPECT_THROW(Json::parse(std::string(100'000, '[')), FatalError);
}

TEST(JsonParse, MutatedInputNeverCrashes)
{
    // Property test: any single-site corruption of a valid document
    // either still parses or raises FatalError — never a crash, hang
    // or abort. Seeded so a failure reproduces.
    const std::string valid =
        "{\"workload\": \"route\", \"mode\": \"die-irb\", "
        "\"scale\": 2, \"ipc\": 1.25e0, \"flags\": [true, false, "
        "null], \"config\": {\"irb.entries\": 1024}}";
    std::mt19937 rng(20260805);
    std::uniform_int_distribution<std::size_t> posDist(
        0, valid.size() - 1);
    std::uniform_int_distribution<int> byteDist(0, 255);
    for (int i = 0; i < 2000; ++i) {
        std::string mutated = valid;
        switch (i % 4) {
          case 0: // overwrite one byte
            mutated[posDist(rng)] =
                static_cast<char>(byteDist(rng));
            break;
          case 1: // truncate
            mutated.resize(posDist(rng));
            break;
          case 2: // delete one byte
            mutated.erase(posDist(rng), 1);
            break;
          default: // insert one byte
            mutated.insert(posDist(rng), 1,
                           static_cast<char>(byteDist(rng)));
            break;
        }
        try {
            const Json parsed = Json::parse(mutated);
            (void)parsed.dump(0); // a parsed value must also dump
        } catch (const FatalError &) {
            // rejected cleanly: exactly what hardening promises
        }
    }
}
