/**
 * @file
 * Unit tests for the Instruction Reuse Buffer: lookup/update semantics,
 * the port model (4R/2W/2RW), CTR replacement hysteresis, associativity,
 * the victim buffer, and fault injection into stored entries.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/irb.hh"

using namespace direb;

namespace
{

Config
irbConfig(std::int64_t entries = 1024, std::int64_t assoc = 1)
{
    Config c;
    c.setInt("irb.entries", entries);
    c.setInt("irb.assoc", assoc);
    return c;
}

} // namespace

TEST(Irb, MissOnEmpty)
{
    Irb irb(irbConfig());
    irb.beginCycle();
    const auto r = irb.lookup(0x1000);
    EXPECT_FALSE(r.pcHit);
    EXPECT_FALSE(r.portDrop);
    EXPECT_EQ(irb.pcMisses(), 1u);
}

TEST(Irb, UpdateThenHitReturnsStoredTuple)
{
    Irb irb(irbConfig());
    irb.beginCycle();
    ASSERT_TRUE(irb.update(0x1000, 11, 22, 33));
    irb.beginCycle();
    const auto r = irb.lookup(0x1000);
    ASSERT_TRUE(r.pcHit);
    EXPECT_EQ(r.op1, 11u);
    EXPECT_EQ(r.op2, 22u);
    EXPECT_EQ(r.result, 33u);
}

TEST(Irb, SamePcUpdateOverwrites)
{
    Irb irb(irbConfig());
    irb.beginCycle();
    irb.update(0x1000, 1, 2, 3);
    irb.beginCycle();
    irb.update(0x1000, 4, 5, 6);
    irb.beginCycle();
    const auto r = irb.lookup(0x1000);
    ASSERT_TRUE(r.pcHit);
    EXPECT_EQ(r.result, 6u);
}

TEST(Irb, DirectMappedConflictsMiss)
{
    Irb irb(irbConfig(16, 1));
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 1);
    // Same set (16 entries * 4B apart), different PC; CTR defers once.
    irb.beginCycle();
    irb.update(0x1000 + 64, 2, 2, 2); // deferred by hysteresis
    irb.beginCycle();
    EXPECT_TRUE(irb.lookup(0x1000).pcHit); // also recharges the CTR
    EXPECT_EQ(irb.ctrDeferrals(), 1u);
    // Conflicting updates must drain the recharged counter to replace.
    irb.beginCycle();
    irb.update(0x1000 + 64, 2, 2, 2); // drains the lookup recharge
    irb.beginCycle();
    irb.update(0x1000 + 64, 2, 2, 2); // counter at zero: replaces
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(0x1000).pcHit);
    irb.beginCycle();
    EXPECT_TRUE(irb.lookup(0x1000 + 64).pcHit);
}

TEST(Irb, CtrRechargeProtectsHotEntries)
{
    // An entry that keeps getting looked up resists an alternating
    // conflicting PC indefinitely (the hysteresis working as intended).
    Irb irb(irbConfig(16, 1));
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 1);
    for (int i = 0; i < 50; ++i) {
        irb.beginCycle();
        EXPECT_TRUE(irb.lookup(0x1000).pcHit) << i; // +1 charge
        irb.update(0x1000 + 64, 2, 2, 2);           // -1 charge
    }
    irb.beginCycle();
    EXPECT_TRUE(irb.lookup(0x1000).pcHit);
}

TEST(Irb, HysteresisDisabledReplacesImmediately)
{
    Config c = irbConfig(16, 1);
    c.setInt("irb.ctr_bits", 0);
    Irb irb(c);
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 1);
    irb.beginCycle();
    irb.update(0x1000 + 64, 2, 2, 2);
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(0x1000).pcHit);
    EXPECT_TRUE(irb.lookup(0x1000 + 64).pcHit);
    EXPECT_EQ(irb.ctrDeferrals(), 0u);
}

TEST(Irb, AssociativityKeepsConflictingPcs)
{
    Config c = irbConfig(32, 2); // 16 sets, 2 ways
    c.setInt("irb.ctr_bits", 0);
    Irb irb(c);
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 1);
    irb.beginCycle();
    irb.update(0x1000 + 64, 2, 2, 2); // same set, second way
    irb.beginCycle();
    EXPECT_TRUE(irb.lookup(0x1000).pcHit);
    irb.beginCycle();
    EXPECT_TRUE(irb.lookup(0x1000 + 64).pcHit);
}

TEST(Irb, LruWithinSet)
{
    Config c = irbConfig(32, 2);
    c.setInt("irb.ctr_bits", 0);
    Irb irb(c);
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 1);
    irb.beginCycle();
    irb.update(0x1040, 2, 2, 2);
    irb.beginCycle();
    irb.lookup(0x1000); // make 0x1040 the LRU way
    irb.beginCycle();
    irb.update(0x1080, 3, 3, 3); // evicts 0x1040
    irb.beginCycle();
    EXPECT_TRUE(irb.lookup(0x1000).pcHit);
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(0x1040).pcHit);
}

TEST(Irb, VictimBufferCatchesEvictions)
{
    Config c = irbConfig(16, 1);
    c.setInt("irb.ctr_bits", 0);
    c.setInt("irb.victim_entries", 4);
    Irb irb(c);
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 7);
    irb.beginCycle();
    irb.update(0x1000 + 64, 2, 2, 8); // evicts 0x1000 into the victim buf
    irb.beginCycle();
    const auto r = irb.lookup(0x1000);
    ASSERT_TRUE(r.pcHit);
    EXPECT_EQ(r.result, 7u);
    EXPECT_EQ(irb.victimHits(), 1u);
}

// ---------------------------------------------------------------------------
// Port model
// ---------------------------------------------------------------------------

TEST(IrbPorts, LookupBudgetIsReadPlusShared)
{
    Config c = irbConfig();
    c.setInt("irb.read_ports", 2);
    c.setInt("irb.rw_ports", 1);
    c.setInt("irb.write_ports", 1);
    Irb irb(c);
    irb.beginCycle();
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(irb.lookup(0x1000 + 4 * i).portDrop);
    EXPECT_TRUE(irb.lookup(0x2000).portDrop); // 2R + 1RW exhausted
    EXPECT_EQ(irb.lookupDrops(), 1u);
}

TEST(IrbPorts, UpdatesDroppedWithoutPorts)
{
    Config c = irbConfig();
    c.setInt("irb.write_ports", 1);
    c.setInt("irb.rw_ports", 0);
    Irb irb(c);
    irb.beginCycle();
    EXPECT_TRUE(irb.update(0x1000, 1, 1, 1));
    EXPECT_FALSE(irb.update(0x1004, 2, 2, 2));
    EXPECT_EQ(irb.updateDrops(), 1u);
    // Dropped update really is dropped.
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(0x1004).pcHit);
}

TEST(IrbPorts, SharedPortsServeBothSides)
{
    Config c = irbConfig();
    c.setInt("irb.read_ports", 0);
    c.setInt("irb.write_ports", 0);
    c.setInt("irb.rw_ports", 2);
    Irb irb(c);
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(0x1000).portDrop); // uses one RW
    EXPECT_TRUE(irb.update(0x1000, 1, 1, 1));  // uses the other
    EXPECT_TRUE(irb.lookup(0x2000).portDrop);  // none left
    EXPECT_FALSE(irb.update(0x2000, 2, 2, 2));
}

TEST(IrbPorts, BudgetResetsEachCycle)
{
    Config c = irbConfig();
    c.setInt("irb.read_ports", 1);
    c.setInt("irb.rw_ports", 0);
    Irb irb(c);
    irb.beginCycle();
    irb.lookup(0x1000);
    EXPECT_TRUE(irb.lookup(0x1004).portDrop);
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(0x1004).portDrop);
}

TEST(IrbPorts, PaperDefaultsAllowFourLookupsAndTwoUpdates)
{
    Irb irb(irbConfig());
    irb.beginCycle();
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(irb.lookup(0x1000 + 4 * i).portDrop);
    EXPECT_TRUE(irb.update(0x2000, 1, 1, 1));
    EXPECT_TRUE(irb.update(0x2004, 1, 1, 1));
    // Two RW ports remain for either side.
    EXPECT_FALSE(irb.lookup(0x3000).portDrop);
    EXPECT_TRUE(irb.update(0x2008, 1, 1, 1));
    // Now everything is exhausted.
    EXPECT_TRUE(irb.lookup(0x3004).portDrop);
    EXPECT_FALSE(irb.update(0x200c, 1, 1, 1));
}

// ---------------------------------------------------------------------------
// Misc
// ---------------------------------------------------------------------------

TEST(Irb, ReuseTestAccounting)
{
    Irb irb(irbConfig());
    irb.recordReuseTest(true);
    irb.recordReuseTest(true);
    irb.recordReuseTest(false);
    EXPECT_EQ(irb.reuseHits(), 2u);
    EXPECT_EQ(irb.reuseMisses(), 1u);
}

TEST(Irb, CorruptEntryFlipsResultBit)
{
    Irb irb(irbConfig());
    irb.beginCycle();
    irb.update(0x1000, 1, 2, 0b100);
    ASSERT_TRUE(irb.corruptEntry(0x1000, 1));
    irb.beginCycle();
    EXPECT_EQ(irb.lookup(0x1000).result, 0b110u);
    EXPECT_FALSE(irb.corruptEntry(0x9999, 0));
}

TEST(Irb, GeometryValidation)
{
    Config c = irbConfig(100, 1); // not a power of two
    EXPECT_THROW(Irb irb(c), FatalError);
    Config c2 = irbConfig(1024, 3); // not divisible
    EXPECT_THROW(Irb irb2(c2), FatalError);
}

TEST(Irb, PipelineDepthConfigurable)
{
    Config c = irbConfig();
    c.setInt("irb.pipeline_depth", 5);
    Irb irb(c);
    EXPECT_EQ(irb.pipelineDepth(), 5u);
    EXPECT_EQ(irb.size(), 1024u);
}
