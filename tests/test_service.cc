/**
 * @file
 * Tests for the simulation service: the incremental HTTP parser against
 * hostile and fragmented input, the bounded JobQueue (backpressure,
 * failure capture, drain), the Prometheus metrics registry, the
 * Server's request routing exercised without sockets, and end-to-end
 * socket tests (concurrent load, sweep-cache hits over HTTP, graceful
 * drain cancelling the pending remainder of an in-flight sweep).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "service/http.hh"
#include "service/job_queue.hh"
#include "service/metrics.hh"
#include "service/server.hh"

using namespace direb;
using service::HttpParser;
using service::HttpRequest;
using service::HttpResponse;

namespace
{

/** Feed a request in one gulp. */
HttpParser::Status
feedAll(HttpParser &p, const std::string &wire)
{
    return p.feed(wire.data(), wire.size());
}

/** Feed a request one byte at a time (the split-read torture case). */
HttpParser::Status
feedBytewise(HttpParser &p, const std::string &wire)
{
    auto st = HttpParser::Status::NeedMore;
    for (char c : wire)
        st = p.feed(&c, 1);
    return st;
}

/** Build an HttpRequest directly (for socket-free route() tests). */
HttpRequest
makeRequest(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    HttpRequest req;
    req.method = method;
    req.target = target;
    req.version = "HTTP/1.1";
    req.body = body;
    return req;
}

/** Split an HTTP wire response into (status code, body). */
std::pair<int, std::string>
splitResponse(const std::string &wire)
{
    const std::size_t sp = wire.find(' ');
    const std::size_t blank = wire.find("\r\n\r\n");
    if (sp == std::string::npos || blank == std::string::npos)
        return {0, ""};
    return {std::atoi(wire.c_str() + sp + 1), wire.substr(blank + 4)};
}

/** One-shot HTTP client: send @p wire, read to EOF, return response. */
std::string
httpExchange(unsigned short port, const std::string &wire)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return "";
    }
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n = ::send(fd, wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }
    std::string resp;
    char buf[16384];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return resp;
}

std::string
postWire(const std::string &target, const std::string &body)
{
    return "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string
getWire(const std::string &target)
{
    return "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

/** Server options sized for tests on a small machine. */
service::ServerOptions
testOptions()
{
    service::ServerOptions opts;
    opts.port = 0; // kernel-assigned
    opts.workers = 1;
    opts.httpThreads = 4;
    opts.queueDepth = 4;
    return opts;
}

} // namespace

// ---------------------------------------------------------------------
// HttpParser
// ---------------------------------------------------------------------

TEST(HttpParser, PostAssembledFromSingleByteReads)
{
    const std::string wire =
        "POST /v1/simulate?pretty=1 HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "X-Request-ID: abc-123\r\n"
        "Content-Length: 9\r\n"
        "\r\n"
        "{\"a\": 1}\n";
    HttpParser p;
    ASSERT_EQ(feedBytewise(p, wire), HttpParser::Status::Done);

    const HttpRequest &req = p.request();
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.target, "/v1/simulate?pretty=1");
    EXPECT_EQ(req.path(), "/v1/simulate");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_EQ(req.body, "{\"a\": 1}\n");
    // Header names are lower-cased at parse time.
    ASSERT_NE(req.header("x-request-id"), nullptr);
    EXPECT_EQ(*req.header("x-request-id"), "abc-123");
    EXPECT_EQ(req.header("no-such-header"), nullptr);
}

TEST(HttpParser, GetWithoutBody)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, getWire("/healthz")), HttpParser::Status::Done);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().body, "");
}

TEST(HttpParser, DoneIsStickyAgainstTrailingBytes)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, getWire("/healthz")), HttpParser::Status::Done);
    const std::string extra = "GET /other HTTP/1.1\r\n\r\n";
    EXPECT_EQ(feedAll(p, extra), HttpParser::Status::Done);
    EXPECT_EQ(p.request().target, "/healthz");
}

TEST(HttpParser, UnknownUpperCaseMethodIs405)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "FROB / HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 405);
}

TEST(HttpParser, MalformedMethodIs400)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "get / HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, UnknownVersionIs505)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "GET / HTTP/2.0\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 505);
}

TEST(HttpParser, PostWithoutContentLengthIs411)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "POST /v1/simulate HTTP/1.1\r\nHost: t\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 411);
}

TEST(HttpParser, OversizedBodyIs413)
{
    HttpParser p(HttpParser::Limits{1024, 16});
    const std::string wire =
        "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
    ASSERT_EQ(feedAll(p, wire), HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 413);
}

TEST(HttpParser, AbsurdContentLengthIs413NotOverflow)
{
    HttpParser p(HttpParser::Limits{1024, 16});
    const std::string wire =
        "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n";
    ASSERT_EQ(feedAll(p, wire), HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 413);
}

TEST(HttpParser, OversizedHeaderBlockIs431)
{
    HttpParser p(HttpParser::Limits{128, 1024});
    const std::string wire = "GET / HTTP/1.1\r\nX-Big: " +
                             std::string(256, 'a') + "\r\n\r\n";
    ASSERT_EQ(feedAll(p, wire), HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 431);
}

TEST(HttpParser, TransferEncodingIs501)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "POST / HTTP/1.1\r\n"
                         "Transfer-Encoding: chunked\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 501);
}

TEST(HttpParser, ConflictingContentLengthsAre400)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                         "Content-Length: 4\r\n\r\nabc"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, ErrorIsSticky)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "bogus\r\n\r\n"), HttpParser::Status::Error);
    const int status = p.errorStatus();
    EXPECT_EQ(feedAll(p, getWire("/healthz")),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), status);
}

TEST(HttpResponse, SerializeFramesBodyAndDefaults)
{
    HttpResponse r(429, "{}\n");
    r.set("Retry-After", "1");
    const std::string wire = r.serialize();
    EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 7), "\r\n\r\n{}\n");
}

// ---------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------

TEST(JobQueue, RunsJobsAndRecordsResults)
{
    service::JobQueue q(4, 1);
    const auto t = q.submit("test", "rid", [] {
        harness::Json j = harness::Json::object();
        j.set("answer", 42.0);
        return j;
    });
    ASSERT_TRUE(t.accepted);

    service::JobRecord rec;
    ASSERT_TRUE(q.wait(t.id, std::chrono::milliseconds(10'000), rec));
    EXPECT_EQ(rec.state, service::JobState::Done);
    EXPECT_EQ(rec.requestId, "rid");
    ASSERT_NE(rec.result.find("answer"), nullptr);
    EXPECT_EQ(rec.result.find("answer")->asNumber(), 42.0);
    EXPECT_EQ(q.completedCount(), 1u);
}

TEST(JobQueue, ThrownExceptionBecomesFailedRecord)
{
    service::JobQueue q(4, 1);
    const auto t = q.submit("test", "rid", []() -> harness::Json {
        fatal("deliberate failure");
    });
    ASSERT_TRUE(t.accepted);

    service::JobRecord rec;
    ASSERT_TRUE(q.wait(t.id, std::chrono::milliseconds(10'000), rec));
    EXPECT_EQ(rec.state, service::JobState::Failed);
    EXPECT_NE(rec.error.find("deliberate failure"), std::string::npos);
    EXPECT_EQ(q.failedCount(), 1u);
}

TEST(JobQueue, FullQueueRejectsAndClosedQueueRejects)
{
    service::JobQueue q(1, 1);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    const auto blocker = q.submit("test", "rid", [gate] {
        gate.wait();
        return harness::Json::object();
    });
    ASSERT_TRUE(blocker.accepted);

    // The single capacity slot is held by the (running) blocker.
    const auto overflow =
        q.submit("test", "rid", [] { return harness::Json::object(); });
    EXPECT_FALSE(overflow.accepted);
    EXPECT_FALSE(overflow.closed); // full, not draining
    EXPECT_EQ(q.rejectedCount(), 1u);

    q.close();
    const auto late =
        q.submit("test", "rid", [] { return harness::Json::object(); });
    EXPECT_FALSE(late.accepted);
    EXPECT_TRUE(late.closed);

    release.set_value();
    q.drain(); // the blocker still finishes: it was accepted
    service::JobRecord rec;
    ASSERT_TRUE(q.lookup(blocker.id, rec));
    EXPECT_EQ(rec.state, service::JobState::Done);
}

TEST(JobQueue, WaitDeadlineReturnsSnapshot)
{
    service::JobQueue q(2, 1);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    const auto t = q.submit("test", "rid", [gate] {
        gate.wait();
        return harness::Json::object();
    });
    ASSERT_TRUE(t.accepted);

    service::JobRecord rec;
    EXPECT_FALSE(q.wait(t.id, std::chrono::milliseconds(50), rec));
    EXPECT_FALSE(rec.finished());
    release.set_value();
    EXPECT_TRUE(q.wait(t.id, std::chrono::milliseconds(10'000), rec));
    EXPECT_EQ(rec.state, service::JobState::Done);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(Metrics, RendersCountersGaugesAndHistograms)
{
    service::Metrics m;
    m.describe("t_requests_total", "counter", "requests");
    m.describe("t_depth", "gauge", "depth");
    m.describe("t_latency_seconds", "histogram", "latency");

    m.count("t_requests_total", "code=\"200\"");
    m.count("t_requests_total", "code=\"200\"");
    m.count("t_requests_total", "code=\"400\"");
    m.gauge("t_depth", 3);
    m.observe("t_latency_seconds", 0.003);
    m.observe("t_latency_seconds", 4.0);

    const std::string text = m.render();
    EXPECT_NE(text.find("# HELP t_requests_total requests"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE t_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("t_requests_total{code=\"200\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("t_requests_total{code=\"400\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("t_depth 3"), std::string::npos);
    // 0.003 lands in the 0.005 bucket and every wider one; 4.0 only in
    // the 10/60/+Inf tail — the buckets are cumulative.
    EXPECT_NE(text.find("t_latency_seconds_bucket{le=\"0.005\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("t_latency_seconds_bucket{le=\"10\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("t_latency_seconds_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("t_latency_seconds_count 2"), std::string::npos);
}

// ---------------------------------------------------------------------
// Server routing (socket-free)
// ---------------------------------------------------------------------

namespace
{

/** route() plus response-body JSON parse. */
std::pair<int, harness::Json>
call(service::Server &server, const HttpRequest &req)
{
    std::string rid;
    HttpResponse resp = server.route(req, rid);
    return {resp.status, harness::Json::parse(resp.body)};
}

} // namespace

TEST(ServerRoute, HealthzReportsOk)
{
    setQuiet(true);
    service::Server server(testOptions());
    auto [status, j] = call(server, makeRequest("GET", "/healthz"));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(j.find("status")->asString(), "ok");
    EXPECT_EQ(j.find("workers")->asNumber(), 1.0);
}

TEST(ServerRoute, SimulateRunsAPoint)
{
    setQuiet(true);
    service::Server server(testOptions());
    auto [status, j] = call(
        server,
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"mode\": \"die-irb\", "
                    "\"max_insts\": 1000000, \"stats\": true}"));
    ASSERT_EQ(status, 200);
    EXPECT_EQ(std::string(j.find("state")->asString()), "done");
    const harness::Json *result = j.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("status")->asString(), "ok");
    EXPECT_EQ(result->find("name")->asString(), "route/die-irb");
    EXPECT_GT(result->find("cycles")->asNumber(), 0.0);
    ASSERT_NE(result->find("stats"), nullptr);
    EXPECT_GT(result->find("stats")->size(), 0u);
}

TEST(ServerRoute, ConfigOverridesReachTheCore)
{
    setQuiet(true);
    service::Server server(testOptions());
    const char *req =
        "{\"workload\": \"parse\", \"mode\": \"die-irb\", "
        "\"max_insts\": 1000000, \"stats\": true, "
        "\"config\": {\"irb.entries\": 8}}";
    const char *req_big =
        "{\"workload\": \"parse\", \"mode\": \"die-irb\", "
        "\"max_insts\": 1000000, \"stats\": true, "
        "\"config\": {\"irb.entries\": 2048}}";
    auto [s1, j1] =
        call(server, makeRequest("POST", "/v1/simulate", req));
    auto [s2, j2] =
        call(server, makeRequest("POST", "/v1/simulate", req_big));
    ASSERT_EQ(s1, 200);
    ASSERT_EQ(s2, 200);
    // A 256x larger IRB must not be cycle-identical to a tiny one.
    EXPECT_NE(j1.find("result")->find("cycles")->asNumber(),
              j2.find("result")->find("cycles")->asNumber());
}

TEST(ServerRoute, MalformedRequestsAre400NeverACrash)
{
    setQuiet(true);
    service::Server server(testOptions());
    const char *bad[] = {
        "{not json",
        "[1, 2, 3]",
        "{\"workload\": \"no-such-workload\"}",
        "{\"workload\": \"route\", \"mode\": \"warp-drive\"}",
        "{\"workload\": \"route\", \"scale\": 4096}",
        "{\"workload\": \"route\", \"max_insts\": 0}",
        "{\"workload\": \"route\", \"config\": {\"fu.intalu\": null}}",
        "{\"workload\": \"route\", \"config\": {\"sweep.cache\": \"x\"}}",
        "{\"workload\": 7}",
        "{\"workload\": \"route\", \"async\": \"yes\"}",
    };
    for (const char *body : bad) {
        SCOPED_TRACE(body);
        auto [status, j] =
            call(server, makeRequest("POST", "/v1/simulate", body));
        EXPECT_EQ(status, 400);
        EXPECT_NE(j.find("error"), nullptr);
    }
}

TEST(ServerRoute, MethodAndPathDiscipline)
{
    setQuiet(true);
    service::Server server(testOptions());
    std::string rid;

    HttpResponse r =
        server.route(makeRequest("GET", "/v1/simulate"), rid);
    EXPECT_EQ(r.status, 405);

    r = server.route(makeRequest("POST", "/healthz"), rid);
    EXPECT_EQ(r.status, 405);

    r = server.route(makeRequest("GET", "/nope"), rid);
    EXPECT_EQ(r.status, 404);

    r = server.route(makeRequest("GET", "/v1/jobs/abc"), rid);
    EXPECT_EQ(r.status, 400);

    r = server.route(makeRequest("GET", "/v1/jobs/999999"), rid);
    EXPECT_EQ(r.status, 404);
}

TEST(ServerRoute, RequestIdPropagatesFromHeader)
{
    setQuiet(true);
    service::Server server(testOptions());
    HttpRequest req = makeRequest("GET", "/healthz");
    req.headers.emplace_back("x-request-id", "trace-me-7");
    std::string rid;
    server.route(req, rid);
    EXPECT_EQ(rid, "trace-me-7");

    // Absent header: the server mints one.
    std::string minted;
    server.route(makeRequest("GET", "/healthz"), minted);
    EXPECT_EQ(minted.rfind("req-", 0), 0u);
}

TEST(ServerRoute, AsyncJobLifecycle)
{
    setQuiet(true);
    service::Server server(testOptions());
    auto [status, j] = call(
        server,
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"max_insts\": 50000, "
                    "\"async\": true}"));
    ASSERT_EQ(status, 202);
    const std::uint64_t id =
        static_cast<std::uint64_t>(j.find("job")->asNumber());

    service::JobRecord rec;
    ASSERT_TRUE(
        server.jobs().wait(id, std::chrono::milliseconds(60'000), rec));
    EXPECT_EQ(rec.state, service::JobState::Done);

    auto [poll_status, poll] = call(
        server,
        makeRequest("GET", "/v1/jobs/" + std::to_string(id)));
    EXPECT_EQ(poll_status, 200);
    EXPECT_EQ(std::string(poll.find("state")->asString()), "done");
    EXPECT_EQ(std::string(poll.find("kind")->asString()), "simulate");
    ASSERT_NE(poll.find("result"), nullptr);
}

TEST(ServerRoute, BackpressureIs429WithRetryAfter)
{
    setQuiet(true);
    service::ServerOptions opts = testOptions();
    opts.queueDepth = 1;
    service::Server server(opts);

    // Deterministically fill the single capacity slot.
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    const auto blocker = server.jobs().submit("test", "rid", [gate] {
        gate.wait();
        return harness::Json::object();
    });
    ASSERT_TRUE(blocker.accepted);

    std::string rid;
    HttpResponse r = server.route(
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"async\": true}"),
        rid);
    EXPECT_EQ(r.status, 429);
    bool sawRetryAfter = false;
    for (const auto &[name, value] : r.headers)
        sawRetryAfter |= name == "Retry-After";
    EXPECT_TRUE(sawRetryAfter);

    release.set_value();
    service::JobRecord rec;
    ASSERT_TRUE(server.jobs().wait(
        blocker.id, std::chrono::milliseconds(10'000), rec));

    // With the slot free again the same request is accepted.
    r = server.route(
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"max_insts\": 50000, "
                    "\"async\": true}"),
        rid);
    EXPECT_EQ(r.status, 202);
}

TEST(ServerRoute, ShutdownDrainsAcceptedCancelsPendingSweepPoints)
{
    setQuiet(true);
    service::Server server(testOptions());

    // Hold the single worker so the sweep job stays queued until the
    // drain has already raised the cancellation token.
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    const auto blocker = server.jobs().submit("test", "rid", [gate] {
        gate.wait();
        return harness::Json::object();
    });
    ASSERT_TRUE(blocker.accepted);

    auto [status, j] = call(
        server,
        makeRequest("POST", "/v1/sweep",
                    "{\"workloads\": [\"route\", \"parse\", "
                    "\"compress\"], \"modes\": [\"sie\", \"die-irb\"], "
                    "\"async\": true}"));
    ASSERT_EQ(status, 202);
    const std::uint64_t sweepId =
        static_cast<std::uint64_t>(j.find("job")->asNumber());

    std::thread drainer([&server] { server.shutdown(); });
    while (!server.draining())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    release.set_value(); // now the sweep job runs — under a raised token
    drainer.join();

    // The accepted sweep finished (drain semantics), but every one of
    // its points was cancelled before simulating.
    service::JobRecord rec;
    ASSERT_TRUE(server.jobs().lookup(sweepId, rec));
    ASSERT_EQ(rec.state, service::JobState::Done);
    EXPECT_EQ(rec.result.find("total")->asNumber(), 6.0);
    EXPECT_EQ(rec.result.find("cancelled")->asNumber(), 6.0);

    // Post-drain: new jobs are refused as draining, health says so.
    std::string rid;
    HttpResponse r = server.route(
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"async\": true}"),
        rid);
    EXPECT_EQ(r.status, 503);
    auto [hs, health] = call(server, makeRequest("GET", "/healthz"));
    EXPECT_EQ(hs, 200);
    EXPECT_EQ(std::string(health.find("status")->asString()),
              "draining");
}

// ---------------------------------------------------------------------
// End-to-end over real sockets
// ---------------------------------------------------------------------

TEST(ServerSocket, ServesSimulateHealthzAndMetrics)
{
    setQuiet(true);
    service::Server server(testOptions());
    server.start();
    const unsigned short port = server.port();

    auto [health_status, health_body] =
        splitResponse(httpExchange(port, getWire("/healthz")));
    EXPECT_EQ(health_status, 200);
    EXPECT_EQ(harness::Json::parse(health_body)
                  .find("status")
                  ->asString(),
              "ok");

    auto [sim_status, sim_body] = splitResponse(httpExchange(
        port, postWire("/v1/simulate",
                       "{\"workload\": \"route\", "
                       "\"max_insts\": 50000}")));
    ASSERT_EQ(sim_status, 200);
    const harness::Json sim = harness::Json::parse(sim_body);
    EXPECT_EQ(std::string(sim.find("state")->asString()), "done");

    // Parser-level rejections also travel the socket path.
    auto [bad_status, bad_body] = splitResponse(httpExchange(
        port, "POST /v1/simulate HTTP/1.1\r\nHost: t\r\n\r\n"));
    EXPECT_EQ(bad_status, 411);

    auto [met_status, met_body] =
        splitResponse(httpExchange(port, getWire("/metrics")));
    EXPECT_EQ(met_status, 200);
    EXPECT_NE(met_body.find("# TYPE dieirb_http_requests_total counter"),
              std::string::npos);
    EXPECT_NE(met_body.find("dieirb_http_requests_total{"
                            "path=\"/v1/simulate\",code=\"200\"} 1"),
              std::string::npos);
    EXPECT_NE(met_body.find("dieirb_http_request_seconds_bucket"),
              std::string::npos);
    // Prometheus text format: every line is a comment or
    // "name{labels} value" with a parseable float value.
    std::size_t start = 0;
    while (start < met_body.size()) {
        std::size_t end = met_body.find('\n', start);
        if (end == std::string::npos)
            end = met_body.size();
        const std::string line = met_body.substr(start, end - start);
        start = end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        char *parse_end = nullptr;
        std::strtod(line.c_str() + sp + 1, &parse_end);
        EXPECT_EQ(*parse_end, '\0') << line;
    }

    server.shutdown();
}

TEST(ServerSocket, RepeatedSweepIsServedFromCache)
{
    setQuiet(true);
    char tmpl[] = "/tmp/dieirb-service-cache-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);

    service::ServerOptions opts = testOptions();
    opts.cacheDir = tmpl;
    service::Server server(opts);
    server.start();

    const std::string body =
        "{\"workloads\": [\"route\", \"parse\"], "
        "\"modes\": [\"sie\", \"die-irb\"], \"max_insts\": 50000}";

    auto [s1, b1] = splitResponse(
        httpExchange(server.port(), postWire("/v1/sweep", body)));
    ASSERT_EQ(s1, 200);
    const harness::Json first = harness::Json::parse(b1);
    EXPECT_EQ(first.find("result")->find("total")->asNumber(), 4.0);
    EXPECT_EQ(first.find("result")->find("cached")->asNumber(), 0.0);

    auto [s2, b2] = splitResponse(
        httpExchange(server.port(), postWire("/v1/sweep", body)));
    ASSERT_EQ(s2, 200);
    const harness::Json second = harness::Json::parse(b2);
    EXPECT_EQ(second.find("result")->find("cached")->asNumber(), 4.0);

    // Cached points carry the same simulation numbers.
    const harness::Json *p1 = &first.find("result")->find("points")->at(0);
    const harness::Json *p2 =
        &second.find("result")->find("points")->at(0);
    EXPECT_EQ(p1->find("cycles")->asNumber(),
              p2->find("cycles")->asNumber());

    auto [ms, mb] =
        splitResponse(httpExchange(server.port(), getWire("/metrics")));
    EXPECT_EQ(ms, 200);
    EXPECT_NE(mb.find("dieirb_sweep_cache_hits_total 4"),
              std::string::npos);

    server.shutdown();
}

TEST(ServerSocket, SixtyFourConcurrentSimulatesAllSucceed)
{
    setQuiet(true);
    service::ServerOptions opts = testOptions();
    opts.httpThreads = 16;
    opts.queueDepth = 128; // > in-flight handlers: nothing gets a 429
    opts.socketTimeoutMs = 60'000;
    service::Server server(opts);
    server.start();
    const unsigned short port = server.port();

    constexpr int clients = 64;
    std::vector<std::thread> threads;
    std::atomic<int> ok{0};
    std::atomic<int> failed{0};
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&, i] {
            const std::string body =
                "{\"workload\": \"route\", \"max_insts\": 20000, "
                "\"deadline_ms\": 120000, "
                "\"config\": {\"irb.entries\": " +
                std::to_string(16 + (i % 8)) + "}}";
            auto [status, resp] = splitResponse(
                httpExchange(port, postWire("/v1/simulate", body)));
            if (status == 200)
                ok.fetch_add(1);
            else
                failed.fetch_add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(ok.load(), clients);
    EXPECT_EQ(failed.load(), 0);
    EXPECT_EQ(server.jobs().completedCount(),
              static_cast<std::uint64_t>(clients));
    EXPECT_EQ(server.jobs().rejectedCount(), 0u);

    server.shutdown();
}
