/**
 * @file
 * Tests for the simulation service: the incremental HTTP parser against
 * hostile and fragmented input (including pipelined back-to-back
 * requests at every split boundary), the signal-safe io helpers, the
 * timer wheel, the bounded JobQueue (backpressure, failure capture,
 * drain), the Prometheus metrics registry, the Server's request routing
 * exercised without sockets, and end-to-end socket tests against the
 * epoll event loop (keep-alive, pipelining, streamed sweeps with
 * disconnect cancellation, slow-client 408s, concurrent load,
 * sweep-cache hits over HTTP, graceful drain).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "service/http.hh"
#include "service/io.hh"
#include "service/job_queue.hh"
#include "service/metrics.hh"
#include "service/server.hh"
#include "service/timer_wheel.hh"

using namespace direb;
using service::HttpParser;
using service::HttpRequest;
using service::HttpResponse;
using service::TimerWheel;
namespace io = service::io;

namespace
{

/** Feed a request in one gulp; returns the resulting parser status. */
HttpParser::Status
feedAll(HttpParser &p, const std::string &wire)
{
    p.feed(wire.data(), wire.size());
    return p.status();
}

/** Feed a request one byte at a time (the split-read torture case). */
HttpParser::Status
feedBytewise(HttpParser &p, const std::string &wire)
{
    for (char c : wire)
        p.feed(&c, 1);
    return p.status();
}

/** Build an HttpRequest directly (for socket-free route() tests). */
HttpRequest
makeRequest(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    HttpRequest req;
    req.method = method;
    req.target = target;
    req.version = "HTTP/1.1";
    req.body = body;
    return req;
}

/** Split an HTTP wire response into (status code, body). */
std::pair<int, std::string>
splitResponse(const std::string &wire)
{
    const std::size_t sp = wire.find(' ');
    const std::size_t blank = wire.find("\r\n\r\n");
    if (sp == std::string::npos || blank == std::string::npos)
        return {0, ""};
    return {std::atoi(wire.c_str() + sp + 1), wire.substr(blank + 4)};
}

/** One-shot HTTP client: send @p wire, read to EOF, return response. */
std::string
httpExchange(unsigned short port, const std::string &wire)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return "";
    }
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n = ::send(fd, wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }
    std::string resp;
    char buf[16384];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return resp;
}

/** Keep-alive request wires (the HTTP/1.1 default). @{ */
std::string
postWireKA(const std::string &target, const std::string &body)
{
    return "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string
getWireKA(const std::string &target)
{
    return "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}
/** @} */

/** One-shot wires for httpExchange (which reads to EOF). @{ */
std::string
postWire(const std::string &target, const std::string &body)
{
    return "POST " + target +
           " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
           "Content-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string
getWire(const std::string &target)
{
    return "GET " + target +
           " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
}
/** @} */

/** Blocking connect to 127.0.0.1:port; -1 on failure. */
int
connectTo(unsigned short port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** One framed response off a keep-alive connection. */
struct WireResponse
{
    int status = 0;
    std::string headers; //!< raw header block (incl. status line)
    std::string body;    //!< decoded (de-chunked) body
    bool chunked = false;
    bool close = false; //!< server announced Connection: close
};

/**
 * Read exactly one response using its framing (Content-Length or
 * chunked), leaving any pipelined surplus in @p carry for the next
 * call — the framing-aware client the keep-alive tests need (reading
 * to EOF would hang forever on a kept-alive connection).
 */
bool
readWireResponse(int fd, std::string &carry, WireResponse &out)
{
    const auto fill = [fd](std::string &buf) {
        char tmp[16384];
        const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n <= 0)
            return false;
        buf.append(tmp, static_cast<std::size_t>(n));
        return true;
    };

    std::size_t hdrEnd;
    while ((hdrEnd = carry.find("\r\n\r\n")) == std::string::npos) {
        if (!fill(carry))
            return false;
    }
    out.headers = carry.substr(0, hdrEnd + 4);
    carry.erase(0, hdrEnd + 4);
    const std::size_t sp = out.headers.find(' ');
    if (sp == std::string::npos)
        return false;
    out.status = std::atoi(out.headers.c_str() + sp + 1);

    std::string lower = out.headers;
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    out.chunked =
        lower.find("transfer-encoding: chunked") != std::string::npos;
    out.close = lower.find("connection: close") != std::string::npos;

    if (out.chunked) {
        for (;;) {
            std::size_t lineEnd;
            while ((lineEnd = carry.find("\r\n")) ==
                   std::string::npos) {
                if (!fill(carry))
                    return false;
            }
            const std::size_t len =
                std::strtoul(carry.c_str(), nullptr, 16);
            carry.erase(0, lineEnd + 2);
            while (carry.size() < len + 2) {
                if (!fill(carry))
                    return false;
            }
            if (len == 0) {
                carry.erase(0, 2);
                return true;
            }
            out.body.append(carry, 0, len);
            carry.erase(0, len + 2);
        }
    }

    std::size_t contentLength = 0;
    const std::size_t cl = lower.find("content-length:");
    if (cl != std::string::npos)
        contentLength = std::strtoul(lower.c_str() + cl + 15, nullptr, 10);
    while (carry.size() < contentLength) {
        if (!fill(carry))
            return false;
    }
    out.body = carry.substr(0, contentLength);
    carry.erase(0, contentLength);
    return true;
}

/** The value of one exact series line in Prometheus text output. */
double
metricValue(const std::string &text, const std::string &series)
{
    const std::size_t pos = text.find("\n" + series + " ");
    if (pos == std::string::npos)
        return -1.0;
    return std::atof(text.c_str() + pos + 1 + series.size() + 1);
}

/** Server options sized for tests on a small machine. */
service::ServerOptions
testOptions()
{
    service::ServerOptions opts;
    opts.port = 0; // kernel-assigned
    opts.workers = 1;
    opts.httpThreads = 4;
    opts.queueDepth = 4;
    return opts;
}

} // namespace

// ---------------------------------------------------------------------
// HttpParser
// ---------------------------------------------------------------------

TEST(HttpParser, PostAssembledFromSingleByteReads)
{
    const std::string wire =
        "POST /v1/simulate?pretty=1 HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "X-Request-ID: abc-123\r\n"
        "Content-Length: 9\r\n"
        "\r\n"
        "{\"a\": 1}\n";
    HttpParser p;
    ASSERT_EQ(feedBytewise(p, wire), HttpParser::Status::Done);

    const HttpRequest &req = p.request();
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.target, "/v1/simulate?pretty=1");
    EXPECT_EQ(req.path(), "/v1/simulate");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_EQ(req.body, "{\"a\": 1}\n");
    // Header names are lower-cased at parse time.
    ASSERT_NE(req.header("x-request-id"), nullptr);
    EXPECT_EQ(*req.header("x-request-id"), "abc-123");
    EXPECT_EQ(req.header("no-such-header"), nullptr);
}

TEST(HttpParser, GetWithoutBody)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, getWire("/healthz")), HttpParser::Status::Done);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().body, "");
}

TEST(HttpParser, DoneIsStickyAgainstTrailingBytes)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, getWire("/healthz")), HttpParser::Status::Done);
    const std::string extra = "GET /other HTTP/1.1\r\n\r\n";
    EXPECT_EQ(feedAll(p, extra), HttpParser::Status::Done);
    EXPECT_EQ(p.request().target, "/healthz");
}

TEST(HttpParser, UnknownUpperCaseMethodIs405)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "FROB / HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 405);
}

TEST(HttpParser, MalformedMethodIs400)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "get / HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, UnknownVersionIs505)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "GET / HTTP/2.0\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 505);
}

TEST(HttpParser, PostWithoutContentLengthIs411)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "POST /v1/simulate HTTP/1.1\r\nHost: t\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 411);
}

TEST(HttpParser, OversizedBodyIs413)
{
    HttpParser p(HttpParser::Limits{1024, 16});
    const std::string wire =
        "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
    ASSERT_EQ(feedAll(p, wire), HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 413);
}

TEST(HttpParser, AbsurdContentLengthIs413NotOverflow)
{
    HttpParser p(HttpParser::Limits{1024, 16});
    const std::string wire =
        "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n";
    ASSERT_EQ(feedAll(p, wire), HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 413);
}

TEST(HttpParser, OversizedHeaderBlockIs431)
{
    HttpParser p(HttpParser::Limits{128, 1024});
    const std::string wire = "GET / HTTP/1.1\r\nX-Big: " +
                             std::string(256, 'a') + "\r\n\r\n";
    ASSERT_EQ(feedAll(p, wire), HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 431);
}

TEST(HttpParser, TransferEncodingIs501)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "POST / HTTP/1.1\r\n"
                         "Transfer-Encoding: chunked\r\n\r\n"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 501);
}

TEST(HttpParser, ConflictingContentLengthsAre400)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                         "Content-Length: 4\r\n\r\nabc"),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, ErrorIsSticky)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "bogus\r\n\r\n"), HttpParser::Status::Error);
    const int status = p.errorStatus();
    EXPECT_EQ(feedAll(p, getWire("/healthz")),
              HttpParser::Status::Error);
    EXPECT_EQ(p.errorStatus(), status);
}

TEST(HttpParser, FeedReportsConsumedBytesAndLeavesTheTail)
{
    // The PR-5 parser discarded everything handed to feed() once the
    // request completed — pipelined bytes evaporated. Now feed()
    // reports how much it consumed and the tail stays with the caller.
    const std::string one =
        "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
    const std::string two = "GET /b HTTP/1.1\r\n\r\n";
    const std::string wire = one + two;

    HttpParser p;
    const std::size_t consumed = p.feed(wire.data(), wire.size());
    ASSERT_EQ(p.status(), HttpParser::Status::Done);
    EXPECT_EQ(consumed, one.size());
    EXPECT_EQ(p.request().target, "/a");
    EXPECT_EQ(p.request().body, "abc");

    // reset() + the unconsumed tail parse the second request whole.
    p.reset();
    EXPECT_EQ(p.feed(wire.data() + consumed, wire.size() - consumed),
              two.size());
    ASSERT_EQ(p.status(), HttpParser::Status::Done);
    EXPECT_EQ(p.request().target, "/b");
    EXPECT_EQ(p.request().body, "");
}

TEST(HttpParser, BackToBackRequestsAtEverySplitBoundary)
{
    const std::string one =
        "POST /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
    const std::string two =
        "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
    const std::string wire = one + two;

    for (std::size_t split = 0; split <= wire.size(); ++split) {
        HttpParser p;
        std::string pending;
        std::vector<HttpRequest> got;
        const auto deliver = [&](const char *data, std::size_t n) {
            pending.append(data, n);
            while (!pending.empty()) {
                pending.erase(0, p.feed(pending.data(), pending.size()));
                if (p.status() != HttpParser::Status::Done)
                    break;
                got.push_back(p.takeRequest());
                p.reset();
            }
        };
        deliver(wire.data(), split);
        deliver(wire.data() + split, wire.size() - split);

        ASSERT_EQ(got.size(), 2u) << "split at " << split;
        EXPECT_EQ(got[0].target, "/a");
        EXPECT_EQ(got[0].body, "hello");
        EXPECT_EQ(got[1].target, "/b");
        EXPECT_EQ(got[1].body, "hi");
    }
}

TEST(HttpParser, ResetAfterErrorAllowsReuse)
{
    HttpParser p;
    ASSERT_EQ(feedAll(p, "bogus\r\n\r\n"), HttpParser::Status::Error);
    p.reset();
    ASSERT_EQ(feedAll(p, getWireKA("/healthz")),
              HttpParser::Status::Done);
    EXPECT_EQ(p.request().path(), "/healthz");
}

TEST(HttpRequest, KeepAliveSemantics)
{
    HttpRequest r;
    r.version = "HTTP/1.1";
    EXPECT_TRUE(r.wantsKeepAlive()); // 1.1 default: persistent

    r.headers.emplace_back("connection", "close");
    EXPECT_FALSE(r.wantsKeepAlive());

    HttpRequest mixedCase;
    mixedCase.version = "HTTP/1.1";
    mixedCase.headers.emplace_back("connection", "Close");
    EXPECT_FALSE(mixedCase.wantsKeepAlive());

    HttpRequest ka;
    ka.version = "HTTP/1.1";
    ka.headers.emplace_back("connection", "keep-alive");
    EXPECT_TRUE(ka.wantsKeepAlive());

    HttpRequest old;
    old.version = "HTTP/1.0";
    EXPECT_FALSE(old.wantsKeepAlive()); // 1.0 always gets close
}

TEST(HttpChunks, EncodeTerminalAndStreamHead)
{
    EXPECT_EQ(service::encodeChunk("hello\n"), "6\r\nhello\n\r\n");
    EXPECT_EQ(service::encodeChunk(std::string(16, 'x')).substr(0, 4),
              "10\r\n"); // hex size
    EXPECT_EQ(service::encodeChunk(""), ""); // zero size = terminal
    EXPECT_EQ(service::lastChunk(), "0\r\n\r\n");

    const std::string head = service::streamHead(
        200, "application/x-ndjson", true, {{"X-Request-Id", "r1"}});
    EXPECT_NE(head.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(head.find("Transfer-Encoding: chunked\r\n"),
              std::string::npos);
    EXPECT_NE(head.find("Content-Type: application/x-ndjson\r\n"),
              std::string::npos);
    EXPECT_NE(head.find("X-Request-Id: r1\r\n"), std::string::npos);
    EXPECT_NE(head.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_EQ(head.find("Content-Length"), std::string::npos);
    EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
}

TEST(HttpResponse, SerializeKeepAliveConnectionHeader)
{
    const std::string wire = HttpResponse(200, "x").serialize(true);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_EQ(wire.find("Connection: close"), std::string::npos);
}

TEST(HttpResponse, SerializeFramesBodyAndDefaults)
{
    HttpResponse r(429, "{}\n");
    r.set("Retry-After", "1");
    const std::string wire = r.serialize();
    EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 7), "\r\n\r\n{}\n");
}

// ---------------------------------------------------------------------
// Signal-safe io helpers
// ---------------------------------------------------------------------

namespace
{

std::atomic<int> sigusr1Seen{0};

void
countSigusr1(int)
{
    sigusr1Seen.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TEST(Io, FullTransferSurvivesSignalInterruptions)
{
    // Regression for the PR-5 bug: recv()/send() returning -1/EINTR was
    // treated as "peer gone" and the rest of the transfer was silently
    // dropped. A non-SA_RESTART handler makes every signal landing in a
    // blocked recv() surface as EINTR, which readFull/writeFull must
    // absorb without losing a byte.
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const int small = 4096; // force short writes + writer blocking
    ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
    ::setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

    struct sigaction sa = {};
    sa.sa_handler = countSigusr1;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // deliberately NOT SA_RESTART
    struct sigaction old = {};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);
    sigusr1Seen.store(0);

    const std::size_t total = 4 * 1024 * 1024;
    std::string payload(total, '\0');
    for (std::size_t i = 0; i < total; ++i)
        payload[i] = static_cast<char>('a' + i % 23);

    // The writer interrupts the reader (this thread) right when it is
    // most likely blocked in recv() — after a pause that let it drain
    // everything sent so far.
    const pthread_t reader = pthread_self();
    bool writeOk = false;
    std::thread writer([&] {
        const std::size_t chunk = 256 * 1024;
        for (std::size_t off = 0; off < total; off += chunk) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            pthread_kill(reader, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            if (!io::writeFull(sv[0], payload.data() + off,
                               std::min(chunk, total - off))) {
                return;
            }
        }
        writeOk = true;
        ::shutdown(sv[0], SHUT_WR);
    });

    std::string got(total, '\0');
    const std::size_t n = io::readFull(sv[1], got.data(), got.size());
    writer.join();

    EXPECT_TRUE(writeOk);
    EXPECT_EQ(n, total);
    EXPECT_EQ(got, payload);
    EXPECT_GT(sigusr1Seen.load(), 0);

    ::sigaction(SIGUSR1, &old, nullptr);
    ::close(sv[0]);
    ::close(sv[1]);
}

// ---------------------------------------------------------------------
// TimerWheel
// ---------------------------------------------------------------------

TEST(TimerWheel, FiresAtDeadlineNotBeforeAndOnlyOnce)
{
    TimerWheel w(10, 8);
    w.schedule(1, 0, 30);
    EXPECT_TRUE(w.expire(29).empty());
    const std::vector<int> due = w.expire(30);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 1);
    EXPECT_TRUE(w.expire(1000).empty()); // one-shot
}

TEST(TimerWheel, CancelSuppressesAndRescheduleSupersedes)
{
    TimerWheel w(10, 8);
    w.schedule(1, 0, 30);
    w.cancel(1);
    EXPECT_TRUE(w.expire(100).empty());

    // Re-arming pushes the deadline out; the stale entry must not fire.
    w.schedule(2, 100, 50);
    w.schedule(2, 120, 500);
    EXPECT_TRUE(w.expire(200).empty());
    const std::vector<int> due = w.expire(620);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 2);
}

TEST(TimerWheel, DeadlineBeyondOneRevolutionParksAndStillFires)
{
    TimerWheel w(10, 4); // 40ms revolution, 1000ms deadline
    w.schedule(7, 0, 1000);
    EXPECT_TRUE(w.expire(990).empty());
    const std::vector<int> due = w.expire(1000);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], 7);
}

TEST(TimerWheel, ManyKeysExpireTogether)
{
    TimerWheel w(10, 16);
    for (int key = 0; key < 64; ++key)
        w.schedule(key, 0, 100 + (key % 3) * 10); // 100/110/120ms
    EXPECT_TRUE(w.expire(99).empty());
    std::vector<int> due = w.expire(200);
    EXPECT_EQ(due.size(), 64u);
    EXPECT_TRUE(w.expire(500).empty());
}

TEST(TimerWheel, PollTimeoutTracksArmedState)
{
    TimerWheel w(10, 4);
    EXPECT_EQ(w.pollTimeoutMs(500), 500); // nothing armed: sleep long
    w.schedule(1, 0, 100);
    EXPECT_EQ(w.pollTimeoutMs(500), 10); // armed: wake every tick
    w.cancel(1);
    EXPECT_EQ(w.pollTimeoutMs(500), 500);
}

// ---------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------

TEST(JobQueue, RunsJobsAndRecordsResults)
{
    service::JobQueue q(4, 1);
    const auto t = q.submit("test", "rid", [] {
        harness::Json j = harness::Json::object();
        j.set("answer", 42.0);
        return j;
    });
    ASSERT_TRUE(t.accepted);

    service::JobRecord rec;
    ASSERT_TRUE(q.wait(t.id, std::chrono::milliseconds(10'000), rec));
    EXPECT_EQ(rec.state, service::JobState::Done);
    EXPECT_EQ(rec.requestId, "rid");
    ASSERT_NE(rec.result.find("answer"), nullptr);
    EXPECT_EQ(rec.result.find("answer")->asNumber(), 42.0);
    EXPECT_EQ(q.completedCount(), 1u);
}

TEST(JobQueue, ThrownExceptionBecomesFailedRecord)
{
    service::JobQueue q(4, 1);
    const auto t = q.submit("test", "rid", []() -> harness::Json {
        fatal("deliberate failure");
    });
    ASSERT_TRUE(t.accepted);

    service::JobRecord rec;
    ASSERT_TRUE(q.wait(t.id, std::chrono::milliseconds(10'000), rec));
    EXPECT_EQ(rec.state, service::JobState::Failed);
    EXPECT_NE(rec.error.find("deliberate failure"), std::string::npos);
    EXPECT_EQ(q.failedCount(), 1u);
}

TEST(JobQueue, FullQueueRejectsAndClosedQueueRejects)
{
    service::JobQueue q(1, 1);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    const auto blocker = q.submit("test", "rid", [gate] {
        gate.wait();
        return harness::Json::object();
    });
    ASSERT_TRUE(blocker.accepted);

    // The single capacity slot is held by the (running) blocker.
    const auto overflow =
        q.submit("test", "rid", [] { return harness::Json::object(); });
    EXPECT_FALSE(overflow.accepted);
    EXPECT_FALSE(overflow.closed); // full, not draining
    EXPECT_EQ(q.rejectedCount(), 1u);

    q.close();
    const auto late =
        q.submit("test", "rid", [] { return harness::Json::object(); });
    EXPECT_FALSE(late.accepted);
    EXPECT_TRUE(late.closed);

    release.set_value();
    q.drain(); // the blocker still finishes: it was accepted
    service::JobRecord rec;
    ASSERT_TRUE(q.lookup(blocker.id, rec));
    EXPECT_EQ(rec.state, service::JobState::Done);
}

TEST(JobQueue, WaitDeadlineReturnsSnapshot)
{
    service::JobQueue q(2, 1);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    const auto t = q.submit("test", "rid", [gate] {
        gate.wait();
        return harness::Json::object();
    });
    ASSERT_TRUE(t.accepted);

    service::JobRecord rec;
    EXPECT_FALSE(q.wait(t.id, std::chrono::milliseconds(50), rec));
    EXPECT_FALSE(rec.finished());
    release.set_value();
    EXPECT_TRUE(q.wait(t.id, std::chrono::milliseconds(10'000), rec));
    EXPECT_EQ(rec.state, service::JobState::Done);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(Metrics, RendersCountersGaugesAndHistograms)
{
    service::Metrics m;
    m.describe("t_requests_total", "counter", "requests");
    m.describe("t_depth", "gauge", "depth");
    m.describe("t_latency_seconds", "histogram", "latency");

    m.count("t_requests_total", "code=\"200\"");
    m.count("t_requests_total", "code=\"200\"");
    m.count("t_requests_total", "code=\"400\"");
    m.gauge("t_depth", 3);
    m.observe("t_latency_seconds", 0.003);
    m.observe("t_latency_seconds", 4.0);

    const std::string text = m.render();
    EXPECT_NE(text.find("# HELP t_requests_total requests"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE t_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("t_requests_total{code=\"200\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("t_requests_total{code=\"400\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("t_depth 3"), std::string::npos);
    // 0.003 lands in the 0.005 bucket and every wider one; 4.0 only in
    // the 10/60/+Inf tail — the buckets are cumulative.
    EXPECT_NE(text.find("t_latency_seconds_bucket{le=\"0.005\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("t_latency_seconds_bucket{le=\"10\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("t_latency_seconds_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("t_latency_seconds_count 2"), std::string::npos);
}

// ---------------------------------------------------------------------
// Server routing (socket-free)
// ---------------------------------------------------------------------

namespace
{

/** route() plus response-body JSON parse. */
std::pair<int, harness::Json>
call(service::Server &server, const HttpRequest &req)
{
    std::string rid;
    HttpResponse resp = server.route(req, rid);
    return {resp.status, harness::Json::parse(resp.body)};
}

} // namespace

TEST(ServerRoute, HealthzReportsOk)
{
    setQuiet(true);
    service::Server server(testOptions());
    auto [status, j] = call(server, makeRequest("GET", "/healthz"));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(j.find("status")->asString(), "ok");
    EXPECT_EQ(j.find("workers")->asNumber(), 1.0);
}

TEST(ServerRoute, HealthzJsonCarriesModeVersionAndUptime)
{
    setQuiet(true);
    service::Server server(testOptions());
    auto [status, j] = call(server, makeRequest("GET", "/healthz"));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(j.find("mode")->asString(), "serve");
    ASSERT_NE(j.find("version"), nullptr);
    EXPECT_FALSE(j.find("version")->asString().empty());
    ASSERT_NE(j.find("uptime_seconds"), nullptr);
    EXPECT_GE(j.find("uptime_seconds")->asNumber(), 0.0);
    ASSERT_NE(j.find("queued"), nullptr);
    ASSERT_NE(j.find("busy"), nullptr);
}

TEST(ServerRoute, HealthzHttp10TextPlainKeepsBareBody)
{
    setQuiet(true);
    service::Server server(testOptions());
    HttpRequest req = makeRequest("GET", "/healthz");
    req.version = "HTTP/1.0";
    req.headers.emplace_back("accept", "text/plain");
    std::string rid;
    const HttpResponse r = server.route(req, rid);
    EXPECT_EQ(r.status, 200);
    // Legacy probes match on the bare body, not a JSON document.
    EXPECT_EQ(r.body, "ok\n");

    // The same probe speaking HTTP/1.1 gets the JSON document.
    auto [status, j] = call(server, makeRequest("GET", "/healthz"));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(j.find("status")->asString(), "ok");
}

TEST(ServerRoute, JobListIsNewestFirstBoundedAndPayloadFree)
{
    setQuiet(true);
    service::Server server(testOptions());
    for (int i = 0; i < 3; ++i) {
        auto [status, j] = call(
            server,
            makeRequest("POST", "/v1/simulate",
                        "{\"workload\": \"route\", \"max_insts\": "
                        "20000, \"cache\": false}"));
        ASSERT_EQ(status, 200);
    }

    auto [status, j] = call(server, makeRequest("GET", "/v1/jobs"));
    ASSERT_EQ(status, 200);
    EXPECT_EQ(j.find("count")->asNumber(), 3.0);
    const harness::Json *jobs = j.find("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_EQ(jobs->size(), 3u);
    EXPECT_GT(jobs->at(0).find("job")->asNumber(),
              jobs->at(2).find("job")->asNumber()); // newest first
    for (std::size_t i = 0; i < jobs->size(); ++i) {
        EXPECT_EQ(jobs->at(i).find("state")->asString(), "done");
        EXPECT_EQ(jobs->at(i).find("kind")->asString(), "simulate");
        ASSERT_NE(jobs->at(i).find("run_seconds"), nullptr);
        // Status only: result payloads stay behind /v1/jobs/<id>.
        EXPECT_EQ(jobs->at(i).find("result"), nullptr);
    }

    auto [s2, j2] =
        call(server, makeRequest("GET", "/v1/jobs?limit=1"));
    ASSERT_EQ(s2, 200);
    EXPECT_EQ(j2.find("jobs")->size(), 1u);

    auto [s3, j3] =
        call(server, makeRequest("GET", "/v1/jobs?limit=0"));
    EXPECT_EQ(s3, 400);
    auto [s4, j4] =
        call(server, makeRequest("GET", "/v1/jobs?limit=bogus"));
    EXPECT_EQ(s4, 400);
}

TEST(JobQueue, HistoryLimitTrimsOldestFinishedRecords)
{
    service::JobQueue q(8, 1, /*history=*/2);
    std::uint64_t first = 0;
    for (int i = 0; i < 4; ++i) {
        const auto t = q.submit("k", "rid", [] {
            return harness::Json::object();
        });
        ASSERT_TRUE(t.accepted);
        if (i == 0)
            first = t.id;
        service::JobRecord rec;
        ASSERT_TRUE(
            q.wait(t.id, std::chrono::milliseconds(10'000), rec));
    }
    service::JobRecord rec;
    EXPECT_FALSE(q.lookup(first, rec)); // trimmed out of history
    EXPECT_EQ(q.list(100).size(), 2u);  // only the newest two remain
    EXPECT_EQ(q.list(1).size(), 1u);
}

TEST(ServerRoute, SimulateRunsAPoint)
{
    setQuiet(true);
    service::Server server(testOptions());
    auto [status, j] = call(
        server,
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"mode\": \"die-irb\", "
                    "\"max_insts\": 1000000, \"stats\": true}"));
    ASSERT_EQ(status, 200);
    EXPECT_EQ(std::string(j.find("state")->asString()), "done");
    const harness::Json *result = j.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("status")->asString(), "ok");
    EXPECT_EQ(result->find("name")->asString(), "route/die-irb");
    EXPECT_GT(result->find("cycles")->asNumber(), 0.0);
    ASSERT_NE(result->find("stats"), nullptr);
    EXPECT_GT(result->find("stats")->size(), 0u);
}

TEST(ServerRoute, ConfigOverridesReachTheCore)
{
    setQuiet(true);
    service::Server server(testOptions());
    const char *req =
        "{\"workload\": \"parse\", \"mode\": \"die-irb\", "
        "\"max_insts\": 1000000, \"stats\": true, "
        "\"config\": {\"irb.entries\": 8}}";
    const char *req_big =
        "{\"workload\": \"parse\", \"mode\": \"die-irb\", "
        "\"max_insts\": 1000000, \"stats\": true, "
        "\"config\": {\"irb.entries\": 2048}}";
    auto [s1, j1] =
        call(server, makeRequest("POST", "/v1/simulate", req));
    auto [s2, j2] =
        call(server, makeRequest("POST", "/v1/simulate", req_big));
    ASSERT_EQ(s1, 200);
    ASSERT_EQ(s2, 200);
    // A 256x larger IRB must not be cycle-identical to a tiny one.
    EXPECT_NE(j1.find("result")->find("cycles")->asNumber(),
              j2.find("result")->find("cycles")->asNumber());
}

TEST(ServerRoute, MalformedRequestsAre400NeverACrash)
{
    setQuiet(true);
    service::Server server(testOptions());
    const char *bad[] = {
        "{not json",
        "[1, 2, 3]",
        "{\"workload\": \"no-such-workload\"}",
        "{\"workload\": \"route\", \"mode\": \"warp-drive\"}",
        "{\"workload\": \"route\", \"scale\": 4096}",
        "{\"workload\": \"route\", \"max_insts\": 0}",
        "{\"workload\": \"route\", \"config\": {\"fu.intalu\": null}}",
        "{\"workload\": \"route\", \"config\": {\"sweep.cache\": \"x\"}}",
        "{\"workload\": 7}",
        "{\"workload\": \"route\", \"async\": \"yes\"}",
    };
    for (const char *body : bad) {
        SCOPED_TRACE(body);
        auto [status, j] =
            call(server, makeRequest("POST", "/v1/simulate", body));
        EXPECT_EQ(status, 400);
        EXPECT_NE(j.find("error"), nullptr);
    }
}

TEST(ServerRoute, MethodAndPathDiscipline)
{
    setQuiet(true);
    service::Server server(testOptions());
    std::string rid;

    HttpResponse r =
        server.route(makeRequest("GET", "/v1/simulate"), rid);
    EXPECT_EQ(r.status, 405);

    r = server.route(makeRequest("POST", "/healthz"), rid);
    EXPECT_EQ(r.status, 405);

    r = server.route(makeRequest("GET", "/nope"), rid);
    EXPECT_EQ(r.status, 404);

    r = server.route(makeRequest("GET", "/v1/jobs/abc"), rid);
    EXPECT_EQ(r.status, 400);

    r = server.route(makeRequest("GET", "/v1/jobs/999999"), rid);
    EXPECT_EQ(r.status, 404);
}

TEST(ServerRoute, RequestIdPropagatesFromHeader)
{
    setQuiet(true);
    service::Server server(testOptions());
    HttpRequest req = makeRequest("GET", "/healthz");
    req.headers.emplace_back("x-request-id", "trace-me-7");
    std::string rid;
    server.route(req, rid);
    EXPECT_EQ(rid, "trace-me-7");

    // Absent header: the server mints one.
    std::string minted;
    server.route(makeRequest("GET", "/healthz"), minted);
    EXPECT_EQ(minted.rfind("req-", 0), 0u);
}

TEST(ServerRoute, AsyncJobLifecycle)
{
    setQuiet(true);
    service::Server server(testOptions());
    auto [status, j] = call(
        server,
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"max_insts\": 50000, "
                    "\"async\": true}"));
    ASSERT_EQ(status, 202);
    const std::uint64_t id =
        static_cast<std::uint64_t>(j.find("job")->asNumber());

    service::JobRecord rec;
    ASSERT_TRUE(
        server.jobs().wait(id, std::chrono::milliseconds(60'000), rec));
    EXPECT_EQ(rec.state, service::JobState::Done);

    auto [poll_status, poll] = call(
        server,
        makeRequest("GET", "/v1/jobs/" + std::to_string(id)));
    EXPECT_EQ(poll_status, 200);
    EXPECT_EQ(std::string(poll.find("state")->asString()), "done");
    EXPECT_EQ(std::string(poll.find("kind")->asString()), "simulate");
    ASSERT_NE(poll.find("result"), nullptr);
}

TEST(ServerRoute, BackpressureIs429WithRetryAfter)
{
    setQuiet(true);
    service::ServerOptions opts = testOptions();
    opts.queueDepth = 1;
    service::Server server(opts);

    // Deterministically fill the single capacity slot.
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    const auto blocker = server.jobs().submit("test", "rid", [gate] {
        gate.wait();
        return harness::Json::object();
    });
    ASSERT_TRUE(blocker.accepted);

    std::string rid;
    HttpResponse r = server.route(
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"async\": true}"),
        rid);
    EXPECT_EQ(r.status, 429);
    bool sawRetryAfter = false;
    for (const auto &[name, value] : r.headers)
        sawRetryAfter |= name == "Retry-After";
    EXPECT_TRUE(sawRetryAfter);

    release.set_value();
    service::JobRecord rec;
    ASSERT_TRUE(server.jobs().wait(
        blocker.id, std::chrono::milliseconds(10'000), rec));

    // With the slot free again the same request is accepted.
    r = server.route(
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"max_insts\": 50000, "
                    "\"async\": true}"),
        rid);
    EXPECT_EQ(r.status, 202);
}

TEST(ServerRoute, ShutdownDrainsAcceptedCancelsPendingSweepPoints)
{
    setQuiet(true);
    service::Server server(testOptions());

    // Hold the single worker so the sweep job stays queued until the
    // drain has already raised the cancellation token.
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    const auto blocker = server.jobs().submit("test", "rid", [gate] {
        gate.wait();
        return harness::Json::object();
    });
    ASSERT_TRUE(blocker.accepted);

    auto [status, j] = call(
        server,
        makeRequest("POST", "/v1/sweep",
                    "{\"workloads\": [\"route\", \"parse\", "
                    "\"compress\"], \"modes\": [\"sie\", \"die-irb\"], "
                    "\"async\": true}"));
    ASSERT_EQ(status, 202);
    const std::uint64_t sweepId =
        static_cast<std::uint64_t>(j.find("job")->asNumber());

    std::thread drainer([&server] { server.shutdown(); });
    while (!server.draining())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    release.set_value(); // now the sweep job runs — under a raised token
    drainer.join();

    // The accepted sweep finished (drain semantics), but every one of
    // its points was cancelled before simulating.
    service::JobRecord rec;
    ASSERT_TRUE(server.jobs().lookup(sweepId, rec));
    ASSERT_EQ(rec.state, service::JobState::Done);
    EXPECT_EQ(rec.result.find("total")->asNumber(), 6.0);
    EXPECT_EQ(rec.result.find("cancelled")->asNumber(), 6.0);

    // Post-drain: new jobs are refused as draining, health says so.
    std::string rid;
    HttpResponse r = server.route(
        makeRequest("POST", "/v1/simulate",
                    "{\"workload\": \"route\", \"async\": true}"),
        rid);
    EXPECT_EQ(r.status, 503);
    auto [hs, health] = call(server, makeRequest("GET", "/healthz"));
    EXPECT_EQ(hs, 200);
    EXPECT_EQ(std::string(health.find("status")->asString()),
              "draining");
}

// ---------------------------------------------------------------------
// End-to-end over real sockets
// ---------------------------------------------------------------------

TEST(ServerSocket, ServesSimulateHealthzAndMetrics)
{
    setQuiet(true);
    service::Server server(testOptions());
    server.start();
    const unsigned short port = server.port();

    auto [health_status, health_body] =
        splitResponse(httpExchange(port, getWire("/healthz")));
    EXPECT_EQ(health_status, 200);
    EXPECT_EQ(harness::Json::parse(health_body)
                  .find("status")
                  ->asString(),
              "ok");

    auto [sim_status, sim_body] = splitResponse(httpExchange(
        port, postWire("/v1/simulate",
                       "{\"workload\": \"route\", "
                       "\"max_insts\": 50000}")));
    ASSERT_EQ(sim_status, 200);
    const harness::Json sim = harness::Json::parse(sim_body);
    EXPECT_EQ(std::string(sim.find("state")->asString()), "done");

    // Parser-level rejections also travel the socket path.
    auto [bad_status, bad_body] = splitResponse(httpExchange(
        port, "POST /v1/simulate HTTP/1.1\r\nHost: t\r\n\r\n"));
    EXPECT_EQ(bad_status, 411);

    auto [met_status, met_body] =
        splitResponse(httpExchange(port, getWire("/metrics")));
    EXPECT_EQ(met_status, 200);
    EXPECT_NE(met_body.find("# TYPE dieirb_http_requests_total counter"),
              std::string::npos);
    EXPECT_NE(met_body.find("dieirb_http_requests_total{"
                            "path=\"/v1/simulate\",code=\"200\"} 1"),
              std::string::npos);
    EXPECT_NE(met_body.find("dieirb_http_request_seconds_bucket"),
              std::string::npos);
    // Prometheus text format: every line is a comment or
    // "name{labels} value" with a parseable float value.
    std::size_t start = 0;
    while (start < met_body.size()) {
        std::size_t end = met_body.find('\n', start);
        if (end == std::string::npos)
            end = met_body.size();
        const std::string line = met_body.substr(start, end - start);
        start = end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        char *parse_end = nullptr;
        std::strtod(line.c_str() + sp + 1, &parse_end);
        EXPECT_EQ(*parse_end, '\0') << line;
    }

    server.shutdown();
}

TEST(ServerSocket, RepeatedSweepIsServedFromCache)
{
    setQuiet(true);
    char tmpl[] = "/tmp/dieirb-service-cache-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);

    service::ServerOptions opts = testOptions();
    opts.cacheDir = tmpl;
    service::Server server(opts);
    server.start();

    const std::string body =
        "{\"workloads\": [\"route\", \"parse\"], "
        "\"modes\": [\"sie\", \"die-irb\"], \"max_insts\": 50000}";

    auto [s1, b1] = splitResponse(
        httpExchange(server.port(), postWire("/v1/sweep", body)));
    ASSERT_EQ(s1, 200);
    const harness::Json first = harness::Json::parse(b1);
    EXPECT_EQ(first.find("result")->find("total")->asNumber(), 4.0);
    EXPECT_EQ(first.find("result")->find("cached")->asNumber(), 0.0);

    auto [s2, b2] = splitResponse(
        httpExchange(server.port(), postWire("/v1/sweep", body)));
    ASSERT_EQ(s2, 200);
    const harness::Json second = harness::Json::parse(b2);
    EXPECT_EQ(second.find("result")->find("cached")->asNumber(), 4.0);

    // Cached points carry the same simulation numbers.
    const harness::Json *p1 = &first.find("result")->find("points")->at(0);
    const harness::Json *p2 =
        &second.find("result")->find("points")->at(0);
    EXPECT_EQ(p1->find("cycles")->asNumber(),
              p2->find("cycles")->asNumber());

    auto [ms, mb] =
        splitResponse(httpExchange(server.port(), getWire("/metrics")));
    EXPECT_EQ(ms, 200);
    EXPECT_NE(mb.find("dieirb_sweep_cache_hits_total 4"),
              std::string::npos);

    server.shutdown();
}

TEST(ServerSocket, SixtyFourConcurrentSimulatesAllSucceed)
{
    setQuiet(true);
    service::ServerOptions opts = testOptions();
    opts.httpThreads = 16;
    opts.queueDepth = 128; // > in-flight handlers: nothing gets a 429
    opts.socketTimeoutMs = 60'000;
    service::Server server(opts);
    server.start();
    const unsigned short port = server.port();

    constexpr int clients = 64;
    std::vector<std::thread> threads;
    std::atomic<int> ok{0};
    std::atomic<int> failed{0};
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&, i] {
            const std::string body =
                "{\"workload\": \"route\", \"max_insts\": 20000, "
                "\"deadline_ms\": 120000, "
                "\"config\": {\"irb.entries\": " +
                std::to_string(16 + (i % 8)) + "}}";
            auto [status, resp] = splitResponse(
                httpExchange(port, postWire("/v1/simulate", body)));
            if (status == 200)
                ok.fetch_add(1);
            else
                failed.fetch_add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(ok.load(), clients);
    EXPECT_EQ(failed.load(), 0);
    EXPECT_EQ(server.jobs().completedCount(),
              static_cast<std::uint64_t>(clients));
    EXPECT_EQ(server.jobs().rejectedCount(), 0u);

    server.shutdown();
}

TEST(ServerSocket, KeepAliveServesManyRequestsOnOneConnection)
{
    setQuiet(true);
    service::Server server(testOptions());
    server.start();

    const int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    std::string carry;
    const std::string simBody =
        "{\"workload\": \"route\", \"max_insts\": 20000}";
    for (int i = 0; i < 8; ++i) {
        const std::string wire = (i % 2 == 0)
            ? getWireKA("/healthz")
            : postWireKA("/v1/simulate", simBody);
        ASSERT_TRUE(io::writeFull(fd, wire.data(), wire.size())) << i;
        WireResponse resp;
        ASSERT_TRUE(readWireResponse(fd, carry, resp)) << i;
        EXPECT_EQ(resp.status, 200) << i;
        EXPECT_FALSE(resp.close) << i;
        harness::Json::parse(resp.body); // intact framing, valid JSON
    }
    ::close(fd);

    auto [ms, mb] =
        splitResponse(httpExchange(server.port(), getWire("/metrics")));
    ASSERT_EQ(ms, 200);
    // 8 requests, one connection (+1 for the /metrics scrape itself).
    EXPECT_EQ(metricValue(mb, "dieirb_http_connections_total"), 2.0);
    EXPECT_EQ(metricValue(mb, "dieirb_http_requests_total{"
                              "path=\"/healthz\",code=\"200\"}"),
              4.0);
    EXPECT_EQ(metricValue(mb, "dieirb_http_requests_total{"
                              "path=\"/v1/simulate\",code=\"200\"}"),
              4.0);
    // The read phase is observable separately from handling.
    EXPECT_NE(mb.find("dieirb_http_read_seconds_bucket"),
              std::string::npos);

    server.shutdown();
}

TEST(ServerSocket, PipelinedRequestsAnswerInOrder)
{
    setQuiet(true);
    service::Server server(testOptions());
    server.start();

    const int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    // Both requests in one write: the second must survive in the
    // parser's unconsumed tail while the first is being served.
    const std::string two =
        getWireKA("/healthz") + getWireKA("/metrics");
    ASSERT_TRUE(io::writeFull(fd, two.data(), two.size()));

    std::string carry;
    WireResponse r1, r2;
    ASSERT_TRUE(readWireResponse(fd, carry, r1));
    ASSERT_TRUE(readWireResponse(fd, carry, r2));
    EXPECT_EQ(r1.status, 200);
    EXPECT_EQ(r2.status, 200);
    EXPECT_EQ(harness::Json::parse(r1.body).find("status")->asString(),
              "ok");
    EXPECT_NE(r2.body.find("# TYPE dieirb_http_requests_total counter"),
              std::string::npos);
    ::close(fd);
    server.shutdown();
}

TEST(ServerSocket, ConnectionCloseAndHttp10GetCloseSemantics)
{
    setQuiet(true);
    service::Server server(testOptions());
    server.start();

    // Explicit Connection: close on an HTTP/1.1 request.
    int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    const std::string closing = getWire("/healthz");
    ASSERT_TRUE(io::writeFull(fd, closing.data(), closing.size()));
    std::string carry;
    WireResponse resp;
    ASSERT_TRUE(readWireResponse(fd, carry, resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_TRUE(resp.close);
    char c;
    EXPECT_EQ(::recv(fd, &c, 1, 0), 0); // server closed
    ::close(fd);

    // HTTP/1.0 clients always get close semantics.
    fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    const std::string http10 = "GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n";
    ASSERT_TRUE(io::writeFull(fd, http10.data(), http10.size()));
    carry.clear();
    WireResponse old;
    ASSERT_TRUE(readWireResponse(fd, carry, old));
    EXPECT_EQ(old.status, 200);
    EXPECT_TRUE(old.close);
    EXPECT_EQ(::recv(fd, &c, 1, 0), 0);
    ::close(fd);

    server.shutdown();
}

TEST(ServerSocket, StreamedSweepDeliversNdjsonPerPointThenKeepAlive)
{
    setQuiet(true);
    service::Server server(testOptions());
    server.start();

    const int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    const std::string body =
        "{\"workloads\": [\"route\", \"parse\"], \"modes\": [\"sie\"], "
        "\"max_insts\": 1000000, \"deadline_ms\": 120000, "
        "\"stream\": true}";
    const std::string wire = postWireKA("/v1/sweep", body);
    ASSERT_TRUE(io::writeFull(fd, wire.data(), wire.size()));

    std::string carry;
    WireResponse resp;
    ASSERT_TRUE(readWireResponse(fd, carry, resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_TRUE(resp.chunked);
    EXPECT_FALSE(resp.close);
    EXPECT_NE(resp.headers.find("application/x-ndjson"),
              std::string::npos);

    // One NDJSON line per point, in enqueue order, then the summary.
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < resp.body.size()) {
        std::size_t end = resp.body.find('\n', start);
        if (end == std::string::npos)
            end = resp.body.size();
        lines.push_back(resp.body.substr(start, end - start));
        start = end + 1;
    }
    ASSERT_EQ(lines.size(), 3u) << resp.body;
    const harness::Json p0 = harness::Json::parse(lines[0]);
    const harness::Json p1 = harness::Json::parse(lines[1]);
    EXPECT_EQ(p0.find("name")->asString(), "route/sie");
    EXPECT_EQ(p0.find("status")->asString(), "ok");
    EXPECT_EQ(p1.find("name")->asString(), "parse/sie");
    const harness::Json done = harness::Json::parse(lines[2]);
    EXPECT_TRUE(done.find("done")->asBool());
    EXPECT_EQ(done.find("total")->asNumber(), 2.0);
    EXPECT_EQ(done.find("cancelled")->asNumber(), 0.0);

    // The connection survives the stream: next request, same socket.
    const std::string next = getWireKA("/healthz");
    ASSERT_TRUE(io::writeFull(fd, next.data(), next.size()));
    WireResponse health;
    ASSERT_TRUE(readWireResponse(fd, carry, health));
    EXPECT_EQ(health.status, 200);
    ::close(fd);

    EXPECT_NE(server.metrics().render().find("dieirb_streams_total 1"),
              std::string::npos);
    server.shutdown();
}

TEST(ServerSocket, ClientDisconnectCancelsPendingStreamedPoints)
{
    setQuiet(true);
    service::ServerOptions opts = testOptions();
    opts.socketTimeoutMs = 60'000;
    service::Server server(opts);
    server.start();

    const int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    // 6 points big enough that the tail is still pending when the
    // client vanishes after the first streamed line.
    const std::string body =
        "{\"workloads\": [\"route\", \"parse\", \"compress\"], "
        "\"modes\": [\"sie\", \"die-irb\"], \"max_insts\": 400000, "
        "\"stream\": true}";
    const std::string wire = postWireKA("/v1/sweep", body);
    ASSERT_TRUE(io::writeFull(fd, wire.data(), wire.size()));

    // Read the head and the first point line only, then vanish.
    std::string seen;
    char buf[4096];
    while (seen.find("\r\n\r\n") == std::string::npos ||
           seen.find('\n', seen.find("\r\n\r\n") + 4) ==
               std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        seen.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd); // abrupt disconnect mid-stream

    // The sweep job notices (EPOLLRDHUP -> connection token) and
    // finishes early instead of simulating into the void.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (server.jobs().outstanding() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(server.jobs().outstanding(), 0u);

    const std::string text = server.metrics().render();
    EXPECT_EQ(metricValue(text, "dieirb_streams_total"), 1.0);
    EXPECT_EQ(metricValue(text, "dieirb_streams_cancelled_total"), 1.0);
    EXPECT_GT(metricValue(text, "dieirb_sim_points_total{"
                                "status=\"cancelled\"}"),
              0.0);
    server.shutdown();
}

TEST(ServerSocket, SlowClientGets408WithRealElapsedTime)
{
    setQuiet(true);
    service::ServerOptions opts = testOptions();
    opts.socketTimeoutMs = 300;
    service::Server server(opts);
    server.start();

    const int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    const auto t0 = std::chrono::steady_clock::now();
    const std::string partial = "GET /healthz HTTP/1.1\r\nHost: t";
    ASSERT_TRUE(io::writeFull(fd, partial.data(), partial.size()));

    std::string carry;
    WireResponse resp;
    ASSERT_TRUE(readWireResponse(fd, carry, resp));
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(resp.status, 408);
    EXPECT_TRUE(resp.close);
    EXPECT_GE(elapsed.count(), 0.25);
    ::close(fd);

    // PR-5 started the latency clock after the full read, so a 408
    // recorded ~0s. It must now carry the real first-byte-to-response
    // wait.
    const double waited = metricValue(
        server.metrics().render(),
        "dieirb_http_request_seconds_sum{path=\"other\"}");
    EXPECT_GE(waited, 0.25);
    server.shutdown();
}
