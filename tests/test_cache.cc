/**
 * @file
 * Unit tests for the cache model and the two-level hierarchy: geometry
 * validation, hit/miss behaviour, LRU replacement, writebacks, and
 * hierarchy latency composition.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/cache.hh"
#include "mem/mem_system.hh"

using namespace direb;

namespace
{

CacheParams
smallCache(unsigned assoc)
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = 4 * 64 * assoc; // 4 sets
    p.assoc = assoc;
    p.blockBytes = 64;
    p.hitLatency = 2;
    return p;
}

} // namespace

TEST(Cache, GeometryValidation)
{
    CacheParams p = smallCache(2);
    p.blockBytes = 48; // not a power of two
    EXPECT_THROW(Cache c(p), FatalError);

    p = smallCache(2);
    p.sizeBytes = 1000; // not divisible
    EXPECT_THROW(Cache c(p), FatalError);

    p = smallCache(2);
    p.assoc = 0;
    EXPECT_THROW(Cache c(p), FatalError);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache(2));
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1030, false).hit); // same 64B block
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SetConflictsEvictLru)
{
    Cache c(smallCache(2)); // 4 sets, 2 ways
    // Three blocks mapping to set 0 (stride = 4 sets * 64B = 256).
    c.access(0x0000, false);
    c.access(0x0100, false);
    c.access(0x0000, false);          // touch: 0x0100 becomes LRU
    EXPECT_FALSE(c.access(0x0200, false).hit); // evicts 0x0100
    EXPECT_TRUE(c.access(0x0000, false).hit);  // MRU survived
    EXPECT_FALSE(c.access(0x0100, false).hit); // LRU was evicted
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(smallCache(1)); // direct-mapped, 4 sets
    c.access(0x0000, true); // dirty
    const auto res = c.access(0x0100, false); // conflicts, evicts dirty
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, 0x0000u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(smallCache(1));
    c.access(0x0000, false);
    EXPECT_FALSE(c.access(0x0100, false).writeback);
}

TEST(Cache, WritebackAddressReconstruction)
{
    Cache c(smallCache(1));
    c.access(0x1040, true); // set 1
    const auto res = c.access(0x2040, false);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, 0x1040u & ~Addr(63));
}

TEST(Cache, ContainsIsSideEffectFree)
{
    Cache c(smallCache(2));
    c.access(0x0000, false);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x4000));
    EXPECT_EQ(c.hits() + c.misses(), 1u); // contains() not counted
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(smallCache(2));
    c.access(0x0000, false);
    c.flush();
    EXPECT_FALSE(c.contains(0x0000));
}

TEST(Cache, MissRate)
{
    Cache c(smallCache(2));
    c.access(0x0000, false);
    c.access(0x0000, false);
    c.access(0x0000, false);
    c.access(0x1000, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

// ---------------------------------------------------------------------------
// Eviction reporting / coherence hooks
// ---------------------------------------------------------------------------

TEST(Cache, CleanEvictionIsStillReported)
{
    Cache c(smallCache(1));
    c.access(0x0000, false); // clean resident
    const auto res = c.access(0x0100, false);
    EXPECT_TRUE(res.evicted); // inclusion needs clean victims too
    EXPECT_EQ(res.evictedAddr, 0x0000u);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, DirtyEvictionReportsBothAddresses)
{
    Cache c(smallCache(1));
    c.access(0x0000, true);
    const auto res = c.access(0x0100, false);
    EXPECT_TRUE(res.evicted);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.evictedAddr, res.writebackAddr);
}

TEST(Cache, ColdMissEvictsNothing)
{
    Cache c(smallCache(2));
    const auto res = c.access(0x0000, false);
    EXPECT_FALSE(res.evicted);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, InvalidateDropsLineAndReportsDirtiness)
{
    Cache c(smallCache(2));
    c.access(0x0000, true);
    bool was_dirty = false;
    EXPECT_TRUE(c.invalidate(0x0020, &was_dirty)); // same 64B block
    EXPECT_TRUE(was_dirty);
    EXPECT_FALSE(c.contains(0x0000));

    // Absent block: no-op, reports clean.
    was_dirty = true;
    EXPECT_FALSE(c.invalidate(0x4000, &was_dirty));
    EXPECT_FALSE(was_dirty);
}

TEST(Cache, InvalidatedLineDoesNotWriteBackLater)
{
    Cache c(smallCache(1));
    c.access(0x0000, true);
    c.invalidate(0x0000);
    // The frame was freed: a conflicting fill must not report a stale
    // writeback of the dropped dirty line.
    const auto res = c.access(0x0100, false);
    EXPECT_FALSE(res.writeback);
    EXPECT_FALSE(res.evicted);
}

TEST(Cache, ClearDirtyDowngradesWithoutEviction)
{
    Cache c(smallCache(1));
    c.access(0x0000, true);
    EXPECT_TRUE(c.containsDirty(0x0000));
    c.clearDirty(0x0000);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.containsDirty(0x0000));
    // Now-clean victim: evicted but not written back.
    const auto res = c.access(0x0100, false);
    EXPECT_TRUE(res.evicted);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, ForEachValidVisitsEveryLine)
{
    Cache c(smallCache(2));
    c.access(0x0000, false);
    c.access(0x1000, true);
    unsigned valid = 0, dirty = 0;
    c.forEachValid([&](Addr, bool d) {
        ++valid;
        dirty += d ? 1 : 0;
    });
    EXPECT_EQ(valid, 2u);
    EXPECT_EQ(dirty, 1u);
}

// ---------------------------------------------------------------------------
// Hierarchy (single-core MemorySystem must reproduce the legacy model)
// ---------------------------------------------------------------------------

TEST(MemHierarchy, LatencyComposition)
{
    Config cfg;
    cfg.setInt("l1d.lat", 3);
    cfg.setInt("l2.lat", 12);
    cfg.setInt("mem.lat", 100);
    mem::MemorySystem h(cfg, 1);

    // Cold: L1 miss + L2 miss + memory.
    EXPECT_EQ(h.dataAccess(0, 0x8000, false, 0).latency, 3u + 12u + 100u);
    // Warm: L1 hit.
    EXPECT_EQ(h.dataAccess(0, 0x8000, false, 0).latency, 3u);
}

TEST(MemHierarchy, L2HitAfterL1Eviction)
{
    Config cfg;
    cfg.setInt("l1d.size", 1024); // tiny L1: 16 sets x 2 x 32B
    cfg.setInt("l1d.assoc", 1);
    cfg.setInt("l1d.block", 32);
    mem::MemorySystem h(cfg, 1);

    h.dataAccess(0, 0x0000, false, 0);        // cold fill
    h.dataAccess(0, 0x0000 + 1024, false, 0); // evicts from L1, fills L2
    const auto r = h.dataAccess(0, 0x0000, false, 0); // L1 miss, L2 hit
    EXPECT_EQ(r.latency, 3u + 12u);
    EXPECT_EQ(r.servedBy, mem::MemResp::Served::L2);
}

TEST(MemHierarchy, InstAndDataAreSplit)
{
    Config cfg;
    mem::MemorySystem h(cfg, 1);
    h.fetchAccess(0, 0x1000, 0);
    EXPECT_EQ(h.l1i(0).misses(), 1u);
    EXPECT_EQ(h.l1d(0).misses(), 0u);
    // Same block via data side still misses L1D (split caches) but hits
    // the shared L2.
    EXPECT_EQ(h.dataAccess(0, 0x1000, false, 0).latency,
              3u + cfg.getUint("l2.lat", 12));
}

TEST(MemHierarchy, DefaultGeometryMatchesPaperBase)
{
    Config cfg;
    mem::MemorySystem h(cfg, 1);
    EXPECT_EQ(h.l1i(0).params().sizeBytes, 64u * 1024u);
    EXPECT_EQ(h.l1d(0).params().sizeBytes, 64u * 1024u);
    EXPECT_EQ(h.l2().params().sizeBytes, 1024u * 1024u);
    EXPECT_EQ(h.l2().params().assoc, 4u);
}
