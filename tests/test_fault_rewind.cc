/**
 * @file
 * Fault-injection campaign over every FaultSite: each detectable site must
 * be caught by the commit-time checker, charge its recovery to the
 * stall.commit.rewind ledger, and leave the architectural results exactly
 * matching the fault-free golden VM. The one designed coverage hole —
 * shared-bus forwarding faults in DIE-IRB (Figure 6(c)) — must escape
 * there and only there.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/runner.hh"

using namespace direb;

namespace
{

const char *worker = R"(
.text
        li x5, 0
        li x6, 0
loop:   addi x5, x5, 1
        mul x7, x5, x5
        add x6, x6, x7
        li x8, 2000
        blt x5, x8, loop
        putint x6
        halt
)";

// High natural reuse so fault.site=irb actually strikes (the IRB only
// matters when duplicates pass the reuse test).
const char *reuse_heavy = R"(
.text
        li x5, 3000
loop:   li x10, 7
        li x11, 9
        add x12, x10, x11
        xor x13, x10, x11
        addi x5, x5, -1
        bnez x5, loop
        putint x12
        halt
)";

Config
faultyConfig(const std::string &mode, const std::string &site, double rate)
{
    Config cfg = harness::baseConfig(mode);
    cfg.set("fault.site", site);
    cfg.setDouble("fault.rate", rate);
    cfg.setInt("fault.seed", 7);
    return cfg;
}

} // namespace

/**
 * The whole campaign for one (mode, site) point: golden-check against the
 * functional VM under live injection, then assert the detection and
 * rewind-accounting invariants.
 */
class FaultRewind : public ::testing::TestWithParam<
                        std::tuple<const char *, const char *>>
{
};

TEST_P(FaultRewind, DetectedRewoundAndCharged)
{
    const auto [mode, site] = GetParam();
    const bool irb_site = std::string(site) == "irb";
    const Program prog = assemble(irb_site ? reuse_heavy : worker, "f");

    // An IRB corruption only matters if a duplicate reuses that entry
    // before it is overwritten, so the irb site needs a far higher rate
    // to strike at all in a short run.
    const double rate = irb_site ? 0.05 : 0.002;

    // goldenRun races the timing core (with faults striking) against the
    // fault-free VM: detection + rewind must hide every strike from the
    // architectural state.
    const harness::GoldenResult g =
        harness::goldenRun(prog, faultyConfig(mode, site, rate));
    ASSERT_TRUE(g.ok()) << mode << "/" << site << ": " << g.mismatch;
    const harness::SimResult &r = g.sim;

    EXPECT_GT(r.stat("core.fault.injected"), 0.0) << mode << "/" << site;
    EXPECT_GT(r.stat("core.fault.detected"), 0.0) << mode << "/" << site;
    EXPECT_EQ(r.stat("core.fault.escaped"), 0.0) << mode << "/" << site;
    // Detection == rewind in this design, and every rewind burns commit
    // bandwidth that the stall ledger must attribute to Rewind.
    EXPECT_EQ(r.stat("core.rewinds"), r.stat("core.fault.detected"));
    EXPECT_GE(r.stat("core.stall.commit.rewind"),
              r.stat("core.fault.detected"));

    // Rewinds cost cycles relative to a clean run of the same program.
    const harness::SimResult clean =
        harness::run(prog, harness::baseConfig(mode));
    EXPECT_GT(r.core.cycles, clean.core.cycles) << mode << "/" << site;
    EXPECT_EQ(r.core.archInsts, clean.core.archInsts);
    EXPECT_EQ(r.output, clean.output);
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectableSites, FaultRewind,
    ::testing::Values(std::make_tuple("die", "fu"),
                      std::make_tuple("die", "fwd_one"),
                      std::make_tuple("die", "fwd_both"),
                      std::make_tuple("die-irb", "fu"),
                      std::make_tuple("die-irb", "fwd_one"),
                      std::make_tuple("die-irb", "irb")),
    [](const auto &info) {
        std::string n = std::string(std::get<0>(info.param)) + "_" +
                        std::get<1>(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(FaultRewindCoverage, SharedForwardingEscapesOnlyInDieIrb)
{
    // The paper's one conceded hole: DIE-IRB forwards one copy of a
    // primary result to both streams, so a fault on that shared bus
    // corrupts both copies identically and sails past the checker.
    const Program prog = assemble(worker, "f");
    const auto r =
        harness::run(prog, faultyConfig("die-irb", "fwd_both", 0.002));
    EXPECT_GT(r.stat("core.fault.injected"), 0.0);
    EXPECT_GT(r.stat("core.fault.escaped"), 0.0);
}

TEST(FaultRewindCoverage, NoInjectionNoRewindCharges)
{
    const Program prog = assemble(worker, "f");
    for (const char *mode : {"sie", "die", "die-irb"}) {
        const auto r = harness::run(prog, harness::baseConfig(mode));
        EXPECT_EQ(r.stat("core.stall.commit.rewind"), 0.0) << mode;
    }
}
