/**
 * @file
 * Tests for the parallel sweep engine: the determinism contract (a
 * parallel sweep is bit-identical to a serial one, results in enqueue
 * order), the Timeout/Error robustness classification, the retry
 * accounting, and the --jobs/DIREB_JOBS plumbing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

/** The Figure-7 matrix: every kernel under sie/die/die-irb. */
harness::Sweep
figure7Sweep(unsigned jobs)
{
    harness::Sweep sweep(jobs);
    for (const auto &w : workloads::list()) {
        for (const char *mode : {"sie", "die", "die-irb"}) {
            sweep.add(w.name + "/" + mode, w.name,
                      harness::baseConfig(mode));
        }
    }
    return sweep;
}

} // namespace

TEST(Sweep, ParallelBitIdenticalToSerial)
{
    setQuiet(true);
    const auto serial = figure7Sweep(1).run();
    const auto parallel = figure7Sweep(4).run();

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), workloads::list().size() * 3);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].name);
        EXPECT_EQ(serial[i].name, parallel[i].name);
        const harness::SimResult &a = harness::requireOk(serial[i]);
        const harness::SimResult &b = harness::requireOk(parallel[i]);
        EXPECT_EQ(a.core.cycles, b.core.cycles);
        EXPECT_EQ(a.core.archInsts, b.core.archInsts);
        EXPECT_DOUBLE_EQ(a.core.ipc, b.core.ipc);
        EXPECT_EQ(a.output, b.output);
        EXPECT_EQ(a.stats, b.stats); // full statistics map, bit for bit
    }
}

TEST(Sweep, ResultsInEnqueueOrder)
{
    setQuiet(true);
    harness::Sweep sweep(4);
    std::vector<std::string> names;
    // Mix cheap and expensive points so completion order differs from
    // enqueue order under any scheduler.
    for (const char *w : {"compress", "stencil", "route", "sort"}) {
        for (unsigned scale : {2u, 1u}) {
            std::string name =
                std::string(w) + "@" + std::to_string(scale);
            const std::size_t idx = sweep.add(
                name, w, harness::baseConfig("die"), scale);
            EXPECT_EQ(idx, names.size());
            names.push_back(std::move(name));
        }
    }

    const auto results = sweep.run();
    ASSERT_EQ(results.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(results[i].name, names[i]);
}

TEST(Sweep, BudgetExhaustionIsTimeoutNotError)
{
    setQuiet(true);
    harness::Sweep sweep(2);
    sweep.add("tiny-budget", "compress", harness::baseConfig("die"),
              /*scale=*/1, /*max_insts=*/500);
    sweep.add("normal", "stencil", harness::baseConfig("die"));

    const auto results = sweep.run();
    ASSERT_EQ(results.size(), 2u);

    EXPECT_EQ(results[0].status, harness::PointStatus::Timeout);
    EXPECT_FALSE(results[0].ok());
    EXPECT_FALSE(results[0].error.empty());
    // Partial statistics survive a timeout.
    EXPECT_GT(results[0].sim.core.cycles, 0u);
    EXPECT_THROW(harness::requireOk(results[0]), FatalError);

    EXPECT_EQ(results[1].status, harness::PointStatus::Ok);
}

TEST(Sweep, UnknownWorkloadIsCapturedError)
{
    setQuiet(true);
    harness::Sweep sweep(2);
    sweep.add("bogus", "no-such-kernel", harness::baseConfig("sie"));
    sweep.add("good", "compress", harness::baseConfig("sie"));

    const auto results = sweep.run();
    EXPECT_EQ(results[0].status, harness::PointStatus::Error);
    EXPECT_NE(results[0].error.find("no-such-kernel"), std::string::npos)
        << results[0].error;
    EXPECT_EQ(results[0].attempts, 2u); // one retry before giving up
    EXPECT_EQ(results[1].status, harness::PointStatus::Ok);
}

TEST(Sweep, TypoedConfigKeyIsCapturedError)
{
    setQuiet(true);
    Config cfg = harness::baseConfig("die");
    cfg.set("core.schedler", "ready_list"); // note the typo

    harness::Sweep sweep(1);
    sweep.add("typo", "compress", cfg);
    const auto results = sweep.run();

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, harness::PointStatus::Error);
    EXPECT_NE(results[0].error.find("core.schedler"), std::string::npos)
        << results[0].error;
    EXPECT_EQ(results[0].attempts, 2u);
}

TEST(Sweep, PrebuiltProgramPointsMatchWorkloadPoints)
{
    setQuiet(true);
    const Config cfg = harness::baseConfig("die-irb");
    harness::Sweep sweep(2);
    sweep.add("by-name", "pointer", cfg);
    sweep.add("by-program", workloads::build("pointer", 1), cfg);

    const auto results = sweep.run();
    const harness::SimResult &a = harness::requireOk(results[0]);
    const harness::SimResult &b = harness::requireOk(results[1]);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.output, b.output);
}

TEST(Sweep, RunIsRepeatable)
{
    setQuiet(true);
    harness::Sweep sweep(2);
    sweep.add("a", "compress", harness::baseConfig("die"));

    const auto first = sweep.run();
    const auto second = sweep.run(); // queue is not consumed
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(harness::requireOk(first[0]).core.cycles,
              harness::requireOk(second[0]).core.cycles);
}

TEST(Sweep, ResultJsonCarriesPointMetadata)
{
    setQuiet(true);
    harness::Sweep sweep(1);
    sweep.add("point-name", "stencil", harness::baseConfig("sie"));
    const auto results = sweep.run();

    const std::string dumped =
        harness::resultJson(results[0]).dump();
    EXPECT_NE(dumped.find("\"point-name\""), std::string::npos);
    EXPECT_NE(dumped.find("\"ok\""), std::string::npos);
    EXPECT_NE(dumped.find("\"cycles\""), std::string::npos);
}

TEST(Sweep, JobsFromArgsParsesAllSpellings)
{
    char prog[] = "prog", eq[] = "--jobs=7";
    char flag[] = "--jobs", five[] = "5";
    char dashj[] = "-j", three[] = "3";

    char *argv_eq[] = {prog, eq};
    EXPECT_EQ(harness::jobsFromArgs(2, argv_eq), 7u);

    char *argv_flag[] = {prog, flag, five};
    EXPECT_EQ(harness::jobsFromArgs(3, argv_flag), 5u);

    char *argv_j[] = {prog, dashj, three};
    EXPECT_EQ(harness::jobsFromArgs(3, argv_j), 3u);

    char *argv_none[] = {prog};
    EXPECT_GE(harness::jobsFromArgs(1, argv_none), 1u);
}

TEST(Sweep, DefaultJobsHonoursEnvironment)
{
    ASSERT_EQ(setenv("DIREB_JOBS", "6", 1), 0);
    EXPECT_EQ(harness::defaultJobs(), 6u);
    unsetenv("DIREB_JOBS");
    EXPECT_GE(harness::defaultJobs(), 1u);
}

TEST(Sweep, ZeroJobsFallsBackToDefault)
{
    unsetenv("DIREB_JOBS");
    harness::Sweep sweep(0);
    EXPECT_GE(sweep.jobs(), 1u);
    EXPECT_EQ(sweep.size(), 0u);
    EXPECT_TRUE(sweep.run().empty());
}

TEST(Sweep, NullCancelTokenRunsEverything)
{
    setQuiet(true);
    harness::Sweep sweep(2);
    sweep.add("a", "route", harness::baseConfig("sie"), 1, 1'000'000);
    sweep.add("b", "parse", harness::baseConfig("sie"), 1, 1'000'000);
    std::atomic<bool> cancel{false};
    const auto results = sweep.run(&cancel);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results)
        EXPECT_EQ(r.status, harness::PointStatus::Ok) << r.name;
}

TEST(Sweep, RaisedCancelTokenSkipsEveryPoint)
{
    setQuiet(true);
    harness::Sweep sweep(2);
    for (int i = 0; i < 8; ++i) {
        sweep.add("p" + std::to_string(i), "route",
                  harness::baseConfig("sie"), 1, 1'000'000);
    }
    std::atomic<bool> cancel{true}; // raised before the first dequeue
    const auto results = sweep.run(&cancel);
    ASSERT_EQ(results.size(), 8u);
    for (const auto &r : results) {
        EXPECT_EQ(r.status, harness::PointStatus::Cancelled) << r.name;
        EXPECT_EQ(r.sim.core.cycles, 0u) << r.name;
        EXPECT_FALSE(r.error.empty());
    }
    EXPECT_STREQ(harness::pointStatusName(results[0].status),
                 "cancelled");

    // The queue survives a cancelled run: a second run completes.
    const auto rerun = sweep.run();
    ASSERT_EQ(rerun.size(), 8u);
    for (const auto &r : rerun)
        EXPECT_EQ(r.status, harness::PointStatus::Ok) << r.name;
}
