/**
 * @file
 * Tests for the workload suite: catalogue integrity, assembly, functional
 * determinism, expected dynamic lengths, per-kernel character (mix,
 * reuse, branchiness), and the synthetic generator's knobs.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "vm/vm.hh"
#include "workloads/workloads.hh"

using namespace direb;
using namespace direb::workloads;

TEST(Workloads, CatalogueHasTwelveKernels)
{
    EXPECT_EQ(list().size(), 12u);
    for (const auto &w : list()) {
        EXPECT_TRUE(exists(w.name));
        EXPECT_FALSE(w.mimics.empty());
        EXPECT_FALSE(w.description.empty());
    }
    EXPECT_FALSE(exists("spice"));
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(build("spice"), FatalError);
    EXPECT_THROW(build("compress", 0), FatalError);
}

TEST(Workloads, AllKernelsAssemble)
{
    for (const auto &w : list()) {
        const Program p = build(w.name);
        EXPECT_GT(p.size(), 20u) << w.name;
        EXPECT_EQ(p.name, w.name);
    }
}

TEST(Workloads, AllKernelsHaltDeterministically)
{
    for (const auto &w : list()) {
        Program p = build(w.name);
        Vm vm(p);
        const StopReason stop = vm.run(20'000'000);
        EXPECT_EQ(stop, StopReason::Halted) << w.name;
        EXPECT_FALSE(vm.state().out.empty()) << w.name;

        // Re-run: bit-identical output.
        Vm vm2(p);
        vm2.run(20'000'000);
        EXPECT_EQ(vm.state().out, vm2.state().out) << w.name;
        EXPECT_EQ(vm.instCount(), vm2.instCount()) << w.name;
    }
}

TEST(Workloads, DynamicLengthsInBudget)
{
    // Roughly 100K..600K dynamic instructions at scale 1 keeps full
    // bench sweeps tractable.
    for (const auto &w : list()) {
        Program p = build(w.name);
        Vm vm(p);
        vm.run(20'000'000);
        EXPECT_GE(vm.instCount(), 100'000u) << w.name;
        EXPECT_LE(vm.instCount(), 600'000u) << w.name;
    }
}

TEST(Workloads, ScaleExtendsRuns)
{
    Program p1 = build("anneal", 1);
    Program p2 = build("anneal", 2);
    Vm v1(p1), v2(p2);
    v1.run(50'000'000);
    v2.run(50'000'000);
    EXPECT_GT(v2.instCount(), 1.5 * v1.instCount());
}

TEST(Workloads, SourceExposesExpandedText)
{
    const std::string s = source("compress", 1);
    EXPECT_EQ(s.find("%OUTER%"), std::string::npos);
    EXPECT_NE(s.find("halt"), std::string::npos);
}

TEST(Workloads, FpKernelsUseFpUnits)
{
    for (const char *w : {"stencil", "neural", "moldyn"}) {
        Program p = build(w);
        Vm vm(p);
        vm.run(20'000'000);
        const auto &c = vm.classCounts();
        const auto fp = c[unsigned(OpClass::FpAdd)] +
                        c[unsigned(OpClass::FpMul)] +
                        c[unsigned(OpClass::FpDiv)] +
                        c[unsigned(OpClass::FpSqrt)];
        EXPECT_GT(fp, vm.instCount() / 10) << w;
    }
}

TEST(Workloads, IntKernelsAvoidFpUnits)
{
    for (const char *w : {"compress", "parse", "object", "sort"}) {
        Program p = build(w);
        Vm vm(p);
        vm.run(20'000'000);
        const auto &c = vm.classCounts();
        EXPECT_EQ(c[unsigned(OpClass::FpAdd)], 0u) << w;
    }
}

TEST(Workloads, PointerIsMemoryBound)
{
    Program p = build("pointer");
    Vm vm(p);
    vm.run(20'000'000);
    const auto &c = vm.classCounts();
    EXPECT_GT(c[unsigned(OpClass::MemRead)], vm.instCount() / 5);
}

TEST(Workloads, ReuseRatesSpanTheSuite)
{
    // The duplicate-stream reuse rate must span a wide range: that spread
    // is what makes the paper's per-app variation reproducible.
    setQuiet(true);
    double lo = 1.0, hi = 0.0;
    for (const char *w : {"parse", "pointer", "neural", "anneal"}) {
        const auto r =
            harness::runWorkload(w, harness::baseConfig("die-irb"));
        const double tests = r.stat("core.irb.reuse_hits") +
                             r.stat("core.irb.reuse_misses");
        ASSERT_GT(tests, 0.0) << w;
        const double rate = r.stat("core.irb.reuse_hits") / tests;
        lo = std::min(lo, rate);
        hi = std::max(hi, rate);
    }
    EXPECT_LT(lo, 0.25);
    EXPECT_GT(hi, 0.40);
}

// ---------------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------------

TEST(Synthetic, DeterministicFromSeed)
{
    SyntheticParams sp;
    sp.seed = 99;
    const Program a = synthetic(sp);
    const Program b = synthetic(sp);
    EXPECT_EQ(a.text, b.text);
    sp.seed = 100;
    const Program c = synthetic(sp);
    EXPECT_NE(a.text, c.text);
}

TEST(Synthetic, RunsAndHalts)
{
    SyntheticParams sp;
    sp.outerIters = 100;
    const Program p = synthetic(sp);
    Vm vm(p);
    EXPECT_EQ(vm.run(10'000'000), StopReason::Halted);
    EXPECT_FALSE(vm.state().out.empty());
}

TEST(Synthetic, GoldenUnderAllModes)
{
    SyntheticParams sp;
    sp.outerIters = 200;
    sp.branchFraction = 0.3;
    sp.memFraction = 0.3;
    const Program p = synthetic(sp);
    for (const char *mode : {"sie", "die", "die-irb"}) {
        const std::string err =
            harness::goldenCheck(p, harness::baseConfig(mode));
        EXPECT_EQ(err, "") << mode << ": " << err;
    }
}

TEST(Synthetic, ReuseKnobControlsHitRate)
{
    setQuiet(true);
    double prev = -1.0;
    for (const double reuse : {0.1, 0.5, 0.9}) {
        SyntheticParams sp;
        sp.reuseFraction = reuse;
        sp.outerIters = 500;
        const Program p = synthetic(sp);
        const auto r = harness::run(p, harness::baseConfig("die-irb"));
        const double tests = r.stat("core.irb.reuse_hits") +
                             r.stat("core.irb.reuse_misses");
        const double rate = r.stat("core.irb.reuse_hits") / tests;
        EXPECT_GT(rate, prev);
        prev = rate;
    }
    EXPECT_GT(prev, 0.5); // high knob -> majority reuse
}

TEST(Synthetic, FpFractionEmitsFpOps)
{
    SyntheticParams sp;
    sp.fpFraction = 0.5;
    sp.outerIters = 50;
    const Program p = synthetic(sp);
    Vm vm(p);
    vm.run(10'000'000);
    const auto &c = vm.classCounts();
    EXPECT_GT(c[unsigned(OpClass::FpAdd)] + c[unsigned(OpClass::FpMul)],
              0u);
}

TEST(Synthetic, ParameterValidation)
{
    SyntheticParams sp;
    sp.blocks = 0;
    EXPECT_THROW(synthetic(sp), FatalError);
}
