/**
 * @file
 * Unit tests for the ISA layer: opcode metadata, operand classification,
 * encode/decode round-trips (exhaustive across formats), and disassembly.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/inst.hh"
#include "vm/executor.hh"

using namespace direb;

TEST(Opcodes, NameRoundTrip)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        Opcode back;
        ASSERT_TRUE(opFromName(opName(op), back)) << opName(op);
        EXPECT_EQ(back, op);
    }
}

TEST(Opcodes, LookupIsCaseInsensitive)
{
    Opcode op;
    ASSERT_TRUE(opFromName("add", op));
    EXPECT_EQ(op, Opcode::ADD);
    ASSERT_TRUE(opFromName("ADD", op));
    EXPECT_EQ(op, Opcode::ADD);
}

TEST(Opcodes, UnknownNameFails)
{
    Opcode op;
    EXPECT_FALSE(opFromName("frobnicate", op));
}

TEST(Opcodes, Classification)
{
    EXPECT_TRUE(isBranch(Opcode::BEQ));
    EXPECT_FALSE(isBranch(Opcode::JAL));
    EXPECT_TRUE(isJump(Opcode::JAL));
    EXPECT_TRUE(isJump(Opcode::JALR));
    EXPECT_TRUE(isControl(Opcode::BNE));
    EXPECT_TRUE(isLoad(Opcode::LW));
    EXPECT_TRUE(isLoad(Opcode::FLD));
    EXPECT_TRUE(isStore(Opcode::SD));
    EXPECT_TRUE(isStore(Opcode::FSD));
    EXPECT_TRUE(isMem(Opcode::LB));
    EXPECT_FALSE(isMem(Opcode::ADD));
    EXPECT_TRUE(isFpOp(Opcode::FMUL));
    EXPECT_FALSE(isFpOp(Opcode::LD));
    EXPECT_TRUE(isHalt(Opcode::HALT));
    EXPECT_TRUE(isOutput(Opcode::PUTC));
    EXPECT_TRUE(isOutput(Opcode::PUTINT));
}

TEST(Opcodes, OpClassMapping)
{
    EXPECT_EQ(opClassOf(Opcode::ADD), OpClass::IntAlu);
    EXPECT_EQ(opClassOf(Opcode::BEQ), OpClass::IntAlu);
    EXPECT_EQ(opClassOf(Opcode::MUL), OpClass::IntMul);
    EXPECT_EQ(opClassOf(Opcode::DIV), OpClass::IntDiv);
    EXPECT_EQ(opClassOf(Opcode::FADD), OpClass::FpAdd);
    EXPECT_EQ(opClassOf(Opcode::FCVTDL), OpClass::FpAdd);
    EXPECT_EQ(opClassOf(Opcode::FMUL), OpClass::FpMul);
    EXPECT_EQ(opClassOf(Opcode::FDIV), OpClass::FpDiv);
    EXPECT_EQ(opClassOf(Opcode::FSQRT), OpClass::FpSqrt);
    EXPECT_EQ(opClassOf(Opcode::LW), OpClass::MemRead);
    EXPECT_EQ(opClassOf(Opcode::SW), OpClass::MemWrite);
    EXPECT_EQ(opClassOf(Opcode::NOP), OpClass::Nop);
}

TEST(Opcodes, RegisterFileSelection)
{
    EXPECT_TRUE(writesFpReg(Opcode::FLD));
    EXPECT_TRUE(writesFpReg(Opcode::FCVTDL));
    EXPECT_FALSE(writesFpReg(Opcode::FCVTLD));
    EXPECT_FALSE(writesFpReg(Opcode::FEQ));
    EXPECT_TRUE(readsFpRegs(Opcode::FEQ));
    EXPECT_FALSE(readsFpRegs(Opcode::FCVTDL));
    EXPECT_FALSE(writesReg(Opcode::SD));
    EXPECT_FALSE(writesReg(Opcode::PUTINT));
    EXPECT_TRUE(writesReg(Opcode::JAL));
}

// ---------------------------------------------------------------------------
// Operand identification
// ---------------------------------------------------------------------------

TEST(Inst, UnifiedRegisterIds)
{
    const Inst add = makeR(Opcode::ADD, 3, 4, 5);
    EXPECT_EQ(add.dstReg(), intReg(3));
    EXPECT_EQ(add.srcReg1(), intReg(4));
    EXPECT_EQ(add.srcReg2(), intReg(5));

    const Inst fadd = makeR(Opcode::FADD, 3, 4, 5);
    EXPECT_EQ(fadd.dstReg(), fpReg(3));
    EXPECT_EQ(fadd.srcReg1(), fpReg(4));
    EXPECT_EQ(fadd.srcReg2(), fpReg(5));
}

TEST(Inst, ZeroRegisterCreatesNoDependency)
{
    const Inst i = makeR(Opcode::ADD, 0, 0, 5);
    EXPECT_EQ(i.dstReg(), noReg);  // write to x0 dropped
    EXPECT_EQ(i.srcReg1(), noReg); // x0 is constant
    EXPECT_EQ(i.srcReg2(), intReg(5));
}

TEST(Inst, SingleSourceFpOps)
{
    const Inst sqrt = makeR(Opcode::FSQRT, 1, 2, 0);
    EXPECT_FALSE(sqrt.usesRs2());
    EXPECT_EQ(sqrt.srcReg2(), noReg);
    EXPECT_EQ(sqrt.srcReg1(), fpReg(2));
}

TEST(Inst, CrossFileOperands)
{
    const Inst cvt = makeR(Opcode::FCVTDL, 1, 2, 0); // int -> fp
    EXPECT_EQ(cvt.dstReg(), fpReg(1));
    EXPECT_EQ(cvt.srcReg1(), intReg(2));

    const Inst back = makeR(Opcode::FCVTLD, 1, 2, 0); // fp -> int
    EXPECT_EQ(back.dstReg(), intReg(1));
    EXPECT_EQ(back.srcReg1(), fpReg(2));

    const Inst fsd = makeS(Opcode::FSD, 5, 7, 16); // base int, data fp
    EXPECT_EQ(fsd.srcReg1(), intReg(5));
    EXPECT_EQ(fsd.srcReg2(), fpReg(7));
}

TEST(Inst, StoreHasNoDestination)
{
    const Inst sw = makeS(Opcode::SW, 5, 6, -4);
    EXPECT_EQ(sw.dstReg(), noReg);
    EXPECT_EQ(sw.srcReg1(), intReg(5));
    EXPECT_EQ(sw.srcReg2(), intReg(6));
}

TEST(Inst, BranchSources)
{
    const Inst beq = makeB(Opcode::BEQ, 3, 4, -8);
    EXPECT_EQ(beq.dstReg(), noReg);
    EXPECT_EQ(beq.srcReg1(), intReg(3));
    EXPECT_EQ(beq.srcReg2(), intReg(4));
}

// ---------------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------------

TEST(Encoding, RoundTripEveryOpcode)
{
    Rng rng(123);
    for (unsigned o = 0; o < numOpcodes; ++o) {
        const auto op = static_cast<Opcode>(o);
        for (int trial = 0; trial < 50; ++trial) {
            Inst in;
            in.op = op;
            switch (opFormat(op)) {
              case Format::R:
                in.rd = static_cast<std::uint8_t>(rng.below(32));
                in.rs1 = static_cast<std::uint8_t>(rng.below(32));
                in.rs2 = static_cast<std::uint8_t>(rng.below(32));
                break;
              case Format::I:
              case Format::S:
                in.rd = static_cast<std::uint8_t>(rng.below(32));
                in.rs1 = static_cast<std::uint8_t>(rng.below(32));
                in.rs2 = static_cast<std::uint8_t>(rng.below(32));
                in.imm = static_cast<std::int32_t>(rng.range(-8192, 8191));
                if (opFormat(op) == Format::I)
                    in.rs2 = 0;
                else
                    in.rd = 0;
                break;
              case Format::B:
                in.rs1 = static_cast<std::uint8_t>(rng.below(32));
                in.rs2 = static_cast<std::uint8_t>(rng.below(32));
                in.imm = static_cast<std::int32_t>(rng.range(-8192, 8191));
                break;
              case Format::U:
              case Format::J:
                in.rd = static_cast<std::uint8_t>(rng.below(32));
                in.imm = static_cast<std::int32_t>(
                    rng.range(-(1 << 18), (1 << 18) - 1));
                break;
              case Format::N:
                break;
            }
            const Inst out = decode(in.encode());
            EXPECT_EQ(out, in) << opName(op);
        }
    }
}

TEST(Encoding, UndefinedOpcodeByteIsFatal)
{
    const std::uint32_t bogus = 0xff000000u;
    EXPECT_THROW(decode(bogus), FatalError);
}

TEST(Encoding, NegativeImmediates)
{
    const Inst i = makeI(Opcode::ADDI, 1, 2, -8192);
    EXPECT_EQ(decode(i.encode()).imm, -8192);
    const Inst j = makeJ(Opcode::JAL, 1, -262144);
    EXPECT_EQ(decode(j.encode()).imm, -262144);
}

// ---------------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------------

TEST(Disasm, RendersOperandsByFile)
{
    EXPECT_EQ(makeR(Opcode::ADD, 1, 2, 3).disasm(), "ADD    x1, x2, x3");
    EXPECT_EQ(makeR(Opcode::FADD, 1, 2, 3).disasm(), "FADD   f1, f2, f3");
    EXPECT_EQ(makeR(Opcode::FSQRT, 1, 2, 0).disasm(), "FSQRT  f1, f2");
}

TEST(Disasm, MemoryOperands)
{
    EXPECT_EQ(makeI(Opcode::LW, 5, 6, -4).disasm(), "LW     x5, -4(x6)");
    EXPECT_EQ(makeS(Opcode::SD, 6, 5, 16).disasm(), "SD     x5, 16(x6)");
    EXPECT_EQ(makeI(Opcode::FLD, 5, 6, 8).disasm(), "FLD    f5, 8(x6)");
}

TEST(Disasm, SystemOps)
{
    EXPECT_EQ(Inst(Opcode::HALT, 0, 0, 0, 0).disasm(), "HALT");
    EXPECT_EQ(Inst(Opcode::NOP, 0, 0, 0, 0).disasm(), "NOP");
}

TEST(RegNames, Rendering)
{
    EXPECT_EQ(regName(intReg(5)), "x5");
    EXPECT_EQ(regName(fpReg(5)), "f5");
    EXPECT_EQ(regName(noReg), "-");
}

// ---------------------------------------------------------------------------
// Exhaustive per-opcode properties (parameterised)
// ---------------------------------------------------------------------------

class EveryOpcode : public ::testing::TestWithParam<unsigned>
{
  protected:
    Opcode op() const { return static_cast<Opcode>(GetParam()); }
};

TEST_P(EveryOpcode, DisasmMentionsMnemonicAndReencodes)
{
    Inst in;
    in.op = op();
    in.rd = 1;
    in.rs1 = 2;
    in.rs2 = 3;
    in.imm = 4;
    if (opFormat(op()) == Format::N)
        in = Inst(op(), 0, 0, 0, 0);

    const std::string d = in.disasm();
    EXPECT_NE(d.find(opName(op())), std::string::npos) << d;

    const Inst back = decode(in.encode());
    EXPECT_EQ(back.op, op());
    EXPECT_EQ(back.encode(), in.encode());
}

TEST_P(EveryOpcode, OperandRulesAreSelfConsistent)
{
    const Inst in(op(), 1, 2, 3, 4);
    // A destination exists iff writesReg says so.
    EXPECT_EQ(in.dstReg() != noReg, writesReg(op()));
    // FP destination register ids live in the FP file.
    if (writesReg(op())) {
        EXPECT_EQ(in.dstReg() >= numIntRegs, writesFpReg(op()))
            << opName(op());
    }
    // rs2 usage is consistent between encoding and dataflow.
    if (!in.usesRs2())
        EXPECT_EQ(in.srcReg2(), noReg);
    // Memory ops must report an access size.
    if (isMem(op()))
        EXPECT_GE(memAccessSize(op()), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EveryOpcode,
                         ::testing::Range(0u, numOpcodes),
                         [](const auto &info) {
                             return std::string(opName(
                                 static_cast<Opcode>(info.param)));
                         });
