/**
 * @file
 * Unit tests for the shared memory system (mem::MemorySystem) in CMP
 * mode: MSI-style invalidation/downgrade between private L1s, inclusion
 * back-invalidation from the shared L2, bank-conflict arbitration, and
 * the single-core degenerate case that must stay coherence-free.
 *
 * The single-core latency-composition behaviour (the legacy MemHierarchy
 * contract) is covered in test_cache.cc; this file is about what changes
 * when two or more cores share the L2.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/logging.hh"
#include "mem/mem_system.hh"

using namespace direb;
using mem::MemResp;
using mem::MemorySystem;

namespace
{

/** Two cores over the default hierarchy. */
Config
defaultCfg()
{
    return Config();
}

} // namespace

TEST(MemSystem, SingleCoreIsNotShared)
{
    Config cfg = defaultCfg();
    MemorySystem h(cfg, 1);
    EXPECT_FALSE(h.shared());
    EXPECT_EQ(h.numCores(), 1u);
    // Same-cycle accesses pay no bank arbitration on the legacy path.
    const auto a = h.dataAccess(0, 0x0000, false, 7);
    const auto b = h.dataAccess(0, 0x4000, false, 7);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(h.bankConflictCount(), 0u);
}

TEST(MemSystem, StoreInvalidatesRemoteCleanCopy)
{
    Config cfg = defaultCfg();
    MemorySystem h(cfg, 2);
    ASSERT_TRUE(h.shared());

    h.dataAccess(1, 0x1000, false, 0); // core 1 reads: clean copy
    ASSERT_TRUE(h.l1d(1).contains(0x1000));

    h.dataAccess(0, 0x1000, true, 1); // core 0 writes: single writer
    EXPECT_FALSE(h.l1d(1).contains(0x1000));
    EXPECT_TRUE(h.l1d(0).containsDirty(0x1000));
    h.auditCoherence();
}

TEST(MemSystem, StoreStealsRemoteDirtyLine)
{
    Config cfg = defaultCfg();
    MemorySystem h(cfg, 2);

    h.dataAccess(0, 0x2000, true, 0); // core 0 owns the line dirty
    ASSERT_TRUE(h.l1d(0).containsDirty(0x2000));

    h.dataAccess(1, 0x2000, true, 1); // ownership migrates
    EXPECT_FALSE(h.l1d(0).contains(0x2000));
    EXPECT_TRUE(h.l1d(1).containsDirty(0x2000));
    // The dirty remote copy merged into the L2 rather than vanishing.
    EXPECT_TRUE(h.l2().contains(0x2000));
    h.auditCoherence();
}

TEST(MemSystem, LoadDowngradesRemoteDirtyLine)
{
    Config cfg = defaultCfg();
    MemorySystem h(cfg, 2);

    h.dataAccess(0, 0x3000, true, 0); // core 0 dirty
    h.dataAccess(1, 0x3000, false, 1); // core 1 reads: M -> S

    // Both keep a copy, neither dirty (the L2 took the data).
    EXPECT_TRUE(h.l1d(0).contains(0x3000));
    EXPECT_FALSE(h.l1d(0).containsDirty(0x3000));
    EXPECT_TRUE(h.l1d(1).contains(0x3000));
    EXPECT_FALSE(h.l1d(1).containsDirty(0x3000));
    EXPECT_TRUE(h.l2().contains(0x3000));
    h.auditCoherence();
}

TEST(MemSystem, InstructionFetchesAreCoherenceTransparent)
{
    Config cfg = defaultCfg();
    MemorySystem h(cfg, 2);

    h.fetchAccess(1, 0x5000, 0);
    h.dataAccess(0, 0x5000, true, 1); // store to the same block
    // I-side copies are read-only and never dirtied; the store must not
    // have disturbed the remote I-cache (no self-modifying code in the
    // ISA) while the D-side invariants still hold.
    EXPECT_TRUE(h.l1i(1).contains(0x5000));
    EXPECT_TRUE(h.l1d(0).containsDirty(0x5000));
    h.auditCoherence();
}

TEST(MemSystem, InclusionBackInvalidatesL1OnL2Eviction)
{
    Config cfg = defaultCfg();
    // Tiny direct-mapped L2 (64 sets x 64B): stride 4096 conflicts.
    cfg.setInt("l2.size", 4096);
    cfg.setInt("l2.assoc", 1);
    MemorySystem h(cfg, 2);

    h.dataAccess(0, 0x0000, false, 0);
    h.dataAccess(0, 0x0020, false, 0); // second 32B L1 block, same L2 block
    ASSERT_TRUE(h.l1d(0).contains(0x0000));
    ASSERT_TRUE(h.l1d(0).contains(0x0020));

    // Conflicting L2 fill from the other core evicts block 0x0000 from
    // the L2; inclusion forces both covered L1 sub-blocks out too.
    h.dataAccess(1, 0x1000, false, 1);
    EXPECT_FALSE(h.l2().contains(0x0000));
    EXPECT_FALSE(h.l1d(0).contains(0x0000));
    EXPECT_FALSE(h.l1d(0).contains(0x0020));
    h.auditCoherence();
}

TEST(MemSystem, BackInvalidatedDirtyLineIsNotLost)
{
    Config cfg = defaultCfg();
    cfg.setInt("l2.size", 4096);
    cfg.setInt("l2.assoc", 1);
    MemorySystem h(cfg, 2);

    h.dataAccess(0, 0x0000, true, 0); // dirty in core 0's L1
    h.dataAccess(1, 0x1000, false, 1); // evicts 0x0000 from the L2
    EXPECT_FALSE(h.l1d(0).contains(0x0000));

    // Timing-only model: the dropped dirty line's data lives in the
    // functional memory image, so nothing is lost — but the block is
    // gone from the whole hierarchy and a re-read must go to DRAM.
    const auto r = h.dataAccess(0, 0x0000, false, 2);
    EXPECT_EQ(r.servedBy, MemResp::Served::Dram);
    h.auditCoherence();
}

TEST(MemSystem, BankConflictChargesSecondSameCycleAccess)
{
    Config cfg = defaultCfg();
    cfg.setInt("l2.banks", 1); // everything collides
    cfg.setInt("l2.bank_lat", 3);
    MemorySystem h(cfg, 2);

    // Two cold misses in the same cycle, one bank: the second queues.
    const auto a = h.dataAccess(0, 0x0000, false, 9);
    const auto b = h.dataAccess(1, 0x8000, false, 9);
    EXPECT_EQ(b.latency, a.latency + 3);
    EXPECT_EQ(h.bankConflictCount(), 1u);

    // A different cycle starts a fresh arbitration window.
    const auto c = h.dataAccess(0, 0x10000, false, 10);
    EXPECT_EQ(c.latency, a.latency);
}

TEST(MemSystem, L1HitsBypassTheBanks)
{
    Config cfg = defaultCfg();
    cfg.setInt("l2.banks", 1);
    MemorySystem h(cfg, 2);

    h.dataAccess(0, 0x0000, false, 0);
    h.dataAccess(1, 0x8000, false, 0);
    const auto conflicts = h.bankConflictCount();

    // L1 hits from both cores in one cycle never touch the L2 banks.
    h.dataAccess(0, 0x0000, false, 5);
    h.dataAccess(1, 0x8000, false, 5);
    EXPECT_EQ(h.bankConflictCount(), conflicts);
}

TEST(MemSystem, DramAccessesAreCounted)
{
    Config cfg = defaultCfg();
    MemorySystem h(cfg, 2);
    EXPECT_EQ(h.dramAccessCount(), 0u);
    h.dataAccess(0, 0x0000, false, 0); // cold: L2 miss -> DRAM
    EXPECT_EQ(h.dramAccessCount(), 1u);
    h.dataAccess(1, 0x0000, false, 1); // L2 hit: no DRAM
    EXPECT_EQ(h.dramAccessCount(), 1u);
}

TEST(MemSystem, SharedLatencyAddsDramOverL2)
{
    Config cfg = defaultCfg();
    cfg.setInt("dram.lat", 250);
    MemorySystem h(cfg, 2);
    // Cold: L1 (3) + L2 tag (12) + DRAM (dram.lat, not mem.lat).
    EXPECT_EQ(h.dataAccess(0, 0x0000, false, 0).latency, 3u + 12u + 250u);
    // Remote L2 hit: no DRAM leg.
    EXPECT_EQ(h.dataAccess(1, 0x0000, false, 1).latency, 3u + 12u);
}

TEST(MemSystem, DeterministicAcrossIdenticalRuns)
{
    const auto drive = [](MemorySystem &h) {
        std::uint64_t sum = 0;
        Cycle now = 0;
        for (unsigned i = 0; i < 2000; ++i) {
            const Addr a = (i * 1237u) % 0x20000u;
            const unsigned c = i % 2;
            sum += h.dataAccess(c, a, (i % 7) == 0, now).latency;
            if (i % 3 == 0)
                sum += h.fetchAccess(c, (a * 5) % 0x20000u, now).latency;
            now += i % 2;
        }
        h.auditCoherence();
        return sum;
    };
    Config cfg_a = defaultCfg();
    Config cfg_b = defaultCfg();
    MemorySystem ha(cfg_a, 2);
    MemorySystem hb(cfg_b, 2);
    EXPECT_EQ(drive(ha), drive(hb));
    EXPECT_EQ(ha.bankConflictCount(), hb.bankConflictCount());
    EXPECT_EQ(ha.dramAccessCount(), hb.dramAccessCount());
}
