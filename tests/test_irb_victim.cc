/**
 * @file
 * Victim-buffer tests for the IRB: LRU spill/refill behaviour, the
 * update()-refreshes-spilled-copies regression (a spilled PC must never
 * grow a stale duplicate), swap-back port accounting, the spilled entry's
 * LRU stamp, CTR-vs-victim interplay, invalidate() clearing both arrays,
 * and a randomized property test pinning the statistics invariants
 *   lookups == pc_hits + pc_misses + lookup_port_drops
 *   update attempts == updates + update_port_drops
 * and the freshness guarantee that a PC hit always serves the value of
 * the most recent port-granted update for that PC.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/random.hh"
#include "core/irb.hh"

using namespace direb;

namespace
{

Config
victimConfig(std::int64_t entries = 16, std::int64_t victims = 4,
             std::int64_t ctr_bits = 0)
{
    Config c;
    c.setInt("irb.entries", entries);
    c.setInt("irb.assoc", 1);
    c.setInt("irb.ctr_bits", ctr_bits);
    c.setInt("irb.victim_entries", victims);
    return c;
}

/** Two PCs that collide in a 16-entry direct-mapped array. */
constexpr Addr conflicting(Addr pc) { return pc + 16 * 4; }

} // namespace

TEST(IrbVictim, SpillRefillRoundTrip)
{
    Irb irb(victimConfig());
    irb.beginCycle();
    irb.update(0x1000, 1, 2, 3);
    irb.beginCycle();
    irb.update(conflicting(0x1000), 4, 5, 6); // spills 0x1000
    irb.beginCycle();
    // Victim hit swaps 0x1000 back into the main array ...
    auto r = irb.lookup(0x1000);
    ASSERT_TRUE(r.pcHit);
    EXPECT_EQ(r.result, 3u);
    EXPECT_EQ(irb.victimHits(), 1u);
    // ... so the next lookup hits the main array directly ...
    irb.beginCycle();
    ASSERT_TRUE(irb.lookup(0x1000).pcHit);
    EXPECT_EQ(irb.victimHits(), 1u);
    // ... and the conflicting PC now lives in the victim buffer.
    irb.beginCycle();
    ASSERT_TRUE(irb.lookup(conflicting(0x1000)).pcHit);
    EXPECT_EQ(irb.victimHits(), 2u);
}

TEST(IrbVictim, VictimBufferEvictsLru)
{
    Irb irb(victimConfig(16, 2));
    // Spill three PCs through one set: the 2-entry victim buffer must
    // keep the two most recently spilled and drop the oldest.
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 1);
    irb.beginCycle();
    irb.update(conflicting(0x1000), 2, 2, 2); // spills 0x1000
    irb.beginCycle();
    irb.update(conflicting(conflicting(0x1000)), 3, 3, 3); // spills +64
    irb.beginCycle();
    irb.update(conflicting(conflicting(conflicting(0x1000))), 4, 4, 4);
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(0x1000).pcHit); // oldest spill is gone
    irb.beginCycle();
    EXPECT_TRUE(irb.lookup(conflicting(0x1000)).pcHit);
}

// Regression for the spilled-PC update bug: updating a PC that lives in
// the victim buffer used to allocate a second, fresher copy in the main
// array while leaving the victim copy stale; once the main copy was
// evicted again, lookups served the stale operands/result.
TEST(IrbVictim, UpdateRefreshesSpilledCopyInsteadOfDuplicating)
{
    Irb irb(victimConfig());
    const Addr pc = 0x1000;
    irb.beginCycle();
    irb.update(pc, 1, 1, 10);
    irb.beginCycle();
    irb.update(conflicting(pc), 2, 2, 20); // spills pc to the victim buf
    irb.beginCycle();
    ASSERT_TRUE(irb.update(pc, 3, 3, 30)); // pc is victim-resident

    // The conflicting PC must still own the main slot: a duplicate
    // allocation would have evicted it.
    irb.beginCycle();
    ASSERT_TRUE(irb.lookup(conflicting(pc)).pcHit);
    EXPECT_EQ(irb.victimHits(), 0u);

    // And pc must serve the refreshed tuple, not the spilled one.
    irb.beginCycle();
    const auto r = irb.lookup(pc);
    ASSERT_TRUE(r.pcHit);
    EXPECT_EQ(r.op1, 3u);
    EXPECT_EQ(r.result, 30u);
}

TEST(IrbVictim, StaleVictimNeverResurfaces)
{
    // The full failure sequence from the bug report: spill, update (old
    // code: duplicate main entry), evict the main copy, lookup. The
    // lookup must see the latest value whichever array serves it.
    Irb irb(victimConfig());
    const Addr pc = 0x1000;
    irb.beginCycle();
    irb.update(pc, 1, 1, 10);
    irb.beginCycle();
    irb.update(conflicting(pc), 2, 2, 20); // pc -> victim buffer
    irb.beginCycle();
    irb.update(pc, 3, 3, 30); // must refresh the victim copy
    irb.beginCycle();
    irb.update(conflicting(pc), 2, 2, 21); // (re)takes the main slot
    irb.beginCycle();
    const auto r = irb.lookup(pc);
    ASSERT_TRUE(r.pcHit);
    EXPECT_EQ(r.result, 30u);
}

TEST(IrbVictim, SwapChargesAWritePort)
{
    Config c = victimConfig();
    c.setInt("irb.read_ports", 4);
    c.setInt("irb.write_ports", 1);
    c.setInt("irb.rw_ports", 0);
    Irb irb(c);
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 1);
    irb.beginCycle();
    irb.update(conflicting(0x1000), 2, 2, 2); // spills 0x1000
    irb.beginCycle();
    // Consume the only write port, then victim-hit: the swap-back cannot
    // be paid for and must be deferred — the hit itself still counts.
    ASSERT_TRUE(irb.update(conflicting(0x1000), 2, 2, 3));
    ASSERT_TRUE(irb.lookup(0x1000).pcHit);
    EXPECT_EQ(irb.victimHits(), 1u);
    EXPECT_EQ(irb.victimSwapDeferrals(), 1u);
    // Still victim-resident: the next lookup (fresh budget) hits the
    // victim buffer again and can now afford the swap.
    irb.beginCycle();
    ASSERT_TRUE(irb.lookup(0x1000).pcHit);
    EXPECT_EQ(irb.victimHits(), 2u);
    EXPECT_EQ(irb.victimSwapDeferrals(), 1u);
    // Swapped back: a main-array hit this time.
    irb.beginCycle();
    ASSERT_TRUE(irb.lookup(0x1000).pcHit);
    EXPECT_EQ(irb.victimHits(), 2u);
}

TEST(IrbVictim, SwappedOutEntryGetsAFreshLruStamp)
{
    // After a victim-hit swap the spilled main-array entry enters the
    // victim buffer as most-recently-used. With the old code it kept its
    // main-array stamp and could be evicted before an older victim.
    Irb irb(victimConfig(16, 2));
    const Addr setA = 0x1000;
    const Addr setB = 0x1004;
    irb.beginCycle();
    irb.update(setA, 0, 0, 1); // V: future victim-buffer resident
    irb.beginCycle();
    irb.update(conflicting(setA), 0, 0, 2); // M in main, V -> victim
    irb.beginCycle();
    irb.update(setB, 0, 0, 3); // W
    irb.beginCycle();
    irb.update(conflicting(setB), 0, 0, 4); // X in main, W -> victim
    // Victim buffer now: V (older), W (newer). Swap V back: M is spilled
    // and must be stamped *now*, making W the LRU victim.
    irb.beginCycle();
    ASSERT_TRUE(irb.lookup(setA).pcHit);
    // Next spill evicts W, not the freshly spilled M.
    irb.beginCycle();
    irb.update(conflicting(conflicting(setB)), 0, 0, 5); // spills X
    irb.beginCycle();
    const auto r = irb.lookup(conflicting(setA)); // M
    ASSERT_TRUE(r.pcHit);
    EXPECT_EQ(r.result, 2u);
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(setB).pcHit); // W was the LRU victim
}

TEST(IrbVictim, CtrHysteresisDefersSpills)
{
    // With CTR enabled a conflicting update drains the counter instead
    // of replacing, so nothing reaches the victim buffer until the
    // counter hits zero.
    Irb irb(victimConfig(16, 4, /*ctr_bits=*/2));
    irb.beginCycle();
    irb.update(0x1000, 1, 1, 1); // inserted with ctr=1
    irb.beginCycle();
    irb.update(conflicting(0x1000), 2, 2, 2); // deferred, ctr -> 0
    EXPECT_EQ(irb.ctrDeferrals(), 1u);
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(conflicting(0x1000)).pcHit);
    EXPECT_EQ(irb.victimHits(), 0u);
    // Counter drained: the next conflict replaces and spills.
    irb.beginCycle();
    irb.update(conflicting(0x1000), 2, 2, 2);
    irb.beginCycle();
    ASSERT_TRUE(irb.lookup(0x1000).pcHit); // served from the victim buf
    EXPECT_EQ(irb.victimHits(), 1u);
}

TEST(IrbVictim, InvalidateClearsBothArrays)
{
    Irb irb(victimConfig());
    const Addr pc = 0x1000;
    irb.beginCycle();
    irb.update(pc, 1, 1, 1);
    irb.beginCycle();
    irb.update(conflicting(pc), 2, 2, 2); // pc -> victim buffer
    irb.beginCycle();
    irb.invalidate(pc);
    EXPECT_FALSE(irb.lookup(pc).pcHit);
    // The main-array copy of the conflicting PC survives.
    irb.beginCycle();
    EXPECT_TRUE(irb.lookup(conflicting(pc)).pcHit);

    // Main-array + victim copies of the same PC can only coexist
    // transiently (swap in flight); invalidate() must clear both arrays
    // regardless, so a swapped-back PC dies with one call.
    irb.beginCycle();
    ASSERT_TRUE(irb.lookup(conflicting(pc)).pcHit);
    irb.invalidate(conflicting(pc));
    irb.beginCycle();
    EXPECT_FALSE(irb.lookup(conflicting(pc)).pcHit);
}

// ---------------------------------------------------------------------------
// Randomized property test: statistics invariants + hit freshness
// ---------------------------------------------------------------------------

TEST(IrbVictimProperty, RandomStreamsKeepStatsInvariantsAndFreshness)
{
    // Tight port budget (1R/1W/1RW) and a small array with a victim
    // buffer: exercises drops, spills, swaps, swap deferrals and CTR
    // deferrals all at once. The IRB itself asserts the lookup partition
    // on every call; this test re-checks it end-to-end and additionally
    // pins update accounting and the freshness property that a PC hit
    // serves exactly the last port-granted update for that PC (the
    // stale-victim bug broke precisely this).
    Config c = victimConfig(16, 4, /*ctr_bits=*/1);
    c.setInt("irb.read_ports", 1);
    c.setInt("irb.write_ports", 1);
    c.setInt("irb.rw_ports", 1);
    Irb irb(c);

    Rng rng(42);
    std::map<Addr, RegVal> lastWritten; // pc -> result of last granted update
    std::uint64_t updateAttempts = 0;
    RegVal nextValue = 1;

    irb.beginCycle();
    for (int op = 0; op < 50000; ++op) {
        if (rng.chance(0.4))
            irb.beginCycle();
        const Addr pc = 0x1000 + 4 * rng.below(48); // 48 PCs over 16+4 slots
        const double dice = rng.uniform();
        if (dice < 0.55) {
            const auto r = irb.lookup(pc);
            if (r.pcHit) {
                const auto it = lastWritten.find(pc);
                ASSERT_NE(it, lastWritten.end())
                    << "hit for a PC never successfully written";
                EXPECT_EQ(r.result, it->second) << "stale value served";
            }
        } else if (dice < 0.95) {
            ++updateAttempts;
            const RegVal v = nextValue++;
            if (irb.update(pc, v, v, v))
                lastWritten[pc] = v;
        } else {
            irb.invalidate(pc);
            lastWritten.erase(pc);
        }
    }

    EXPECT_EQ(irb.lookups(),
              irb.pcHits() + irb.pcMisses() + irb.lookupDrops());
    EXPECT_EQ(updateAttempts, irb.updates() + irb.updateDrops());
    EXPECT_LE(irb.victimHits(), irb.pcHits());
}
