/**
 * @file
 * Tests for the compressed columnar result store and architectural
 * checkpoints: bit-stream / Huffman / compress round-trips, seeded
 * corruption fuzzing of every untrusted decode path (mutated input must
 * raise FatalError or decode to identical data — never crash), the
 * checkpoint golden-equality contract (a restored timing run commits the
 * exact architectural results of a straight run), warm-started sweeps
 * through harness::run, the sweep-cache schema-version gate, pack/unpack
 * byte identity on a real sweep.cache directory, /v1/query aggregation
 * against hand-computed values, and the Server route for /v1/query
 * (exercised without sockets).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "service/server.hh"
#include "store/checkpoint.hh"
#include "store/codec.hh"
#include "store/query.hh"
#include "store/store.hh"
#include "vm/checkpoint.hh"
#include "workloads/workloads.hh"

using namespace direb;
namespace fs = std::filesystem;

namespace
{

constexpr std::uint64_t budget = 20'000; //!< keep each timing run cheap

/** A fresh scratch directory under the test temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Every regular file of @p dir as name -> bytes (non-recursive). */
std::map<std::string, std::string>
dirBytes(const std::string &dir)
{
    std::map<std::string, std::string> files;
    for (const auto &ent : fs::directory_iterator(dir))
        if (ent.is_regular_file())
            files[ent.path().filename().string()] =
                slurp(ent.path().string());
    return files;
}

/** Apply one seeded random mutation (the test_report.cc pattern). */
std::string
mutate(const std::string &valid, std::mt19937 &rng, int kind)
{
    std::uniform_int_distribution<std::size_t> posDist(
        0, valid.empty() ? 0 : valid.size() - 1);
    std::uniform_int_distribution<int> byteDist(0, 255);
    std::string m = valid;
    if (m.empty())
        return m;
    switch (kind % 4) {
      case 0: // overwrite one byte
        m[posDist(rng)] = static_cast<char>(byteDist(rng));
        break;
      case 1: // truncate
        m.resize(posDist(rng));
        break;
      case 2: // delete one byte
        m.erase(posDist(rng), 1);
        break;
      default: // insert one byte
        m.insert(posDist(rng), 1, static_cast<char>(byteDist(rng)));
        break;
    }
    return m;
}

/**
 * One deterministic short program for the checkpoint tests: a small
 * synthetic kernel that runs well past the checkpoint boundary, prints
 * its checksum and HALTs, so straight and restored runs can be compared
 * over a complete execution.
 */
Program
testProgram()
{
    workloads::SyntheticParams p;
    p.seed = 7;
    p.blocks = 16;
    p.instsPerBlock = 8;
    p.outerIters = 60;
    p.memFraction = 0.25;
    p.branchFraction = 0.1;
    return workloads::synthetic(p);
}

constexpr std::uint64_t ckptAt = 2'000; //!< checkpoint boundary

bool
sameCheckpoint(const ArchCheckpoint &a, const ArchCheckpoint &b)
{
    if (a.programFnv != b.programFnv || a.insts != b.insts ||
        a.pc != b.pc || a.out != b.out || a.intRegs != b.intRegs ||
        a.fpRegs != b.fpRegs || a.pages.size() != b.pages.size())
        return false;
    for (std::size_t i = 0; i < a.pages.size(); ++i)
        if (a.pages[i].pageNumber != b.pages[i].pageNumber ||
            a.pages[i].bytes != b.pages[i].bytes)
            return false;
    return true;
}

/** Artifact contents as the exact bytes unpack would write. */
std::map<std::string, std::string>
flatten(const store::Artifact &artifact)
{
    std::map<std::string, std::string> files;
    for (const auto &e : artifact.entries)
        files[e.filename] = store::renderEntryBytes(e);
    for (const auto &r : artifact.rawFiles)
        files[r.filename] = r.bytes;
    return files;
}

} // namespace

// ---------------------------------------------------------------------
// Bit streams and varints
// ---------------------------------------------------------------------

TEST(BitStream, BitsVarintsAndBytesRoundTrip)
{
    store::BitWriter w;
    w.putBits(0b1011, 4);
    w.putBits(0, 1);
    w.putBits(0x1FFFFFFFFFFFFFFULL, 57); // the per-call maximum
    w.putVarint(0);
    w.putVarint(127);
    w.putVarint(128);
    w.putVarint(0xDEADBEEFCAFEULL);
    w.putVarint(~0ULL);
    const char raw[] = "raw bytes after unaligned bits";
    w.putBits(1, 3); // force a non-byte boundary before putBytes
    w.putBytes(raw, sizeof(raw));
    w.putBits(0x2A, 6);
    const std::string buf = w.finish();

    store::BitReader r(buf);
    EXPECT_EQ(r.getBits(4), 0b1011u);
    EXPECT_EQ(r.getBits(1), 0u);
    EXPECT_EQ(r.getBits(57), 0x1FFFFFFFFFFFFFFULL);
    EXPECT_EQ(r.getVarint(), 0u);
    EXPECT_EQ(r.getVarint(), 127u);
    EXPECT_EQ(r.getVarint(), 128u);
    EXPECT_EQ(r.getVarint(), 0xDEADBEEFCAFEULL);
    EXPECT_EQ(r.getVarint(), ~0ULL);
    EXPECT_EQ(r.getBits(3), 1u);
    char back[sizeof(raw)];
    r.getBytes(back, sizeof(back));
    EXPECT_EQ(std::string(back, sizeof(back)),
              std::string(raw, sizeof(raw)));
    EXPECT_EQ(r.getBits(6), 0x2Au);
    EXPECT_LT(r.bitsLeft(), 8u); // only the padding remains
}

TEST(BitStream, ZigzagIsAnInvolutionOnExtremes)
{
    for (std::int64_t v :
         {std::int64_t(0), std::int64_t(1), std::int64_t(-1),
          std::int64_t(123456789), std::int64_t(-123456789),
          std::numeric_limits<std::int64_t>::min(),
          std::numeric_limits<std::int64_t>::max()}) {
        EXPECT_EQ(store::zigzagDecode(store::zigzagEncode(v)), v);
    }
    // Small magnitudes map to small codes (the point of the mapping).
    EXPECT_EQ(store::zigzagEncode(-1), 1u);
    EXPECT_EQ(store::zigzagEncode(1), 2u);
}

TEST(BitStream, ReaderRaisesFatalErrorPastTheEnd)
{
    store::BitWriter w;
    w.putBits(0xFF, 8);
    const std::string buf = w.finish();

    store::BitReader bits(buf);
    EXPECT_EQ(bits.getBits(8), 0xFFu);
    EXPECT_THROW(bits.getBits(1), FatalError);

    // (BitReader borrows the buffer, so it must outlive the reader.)
    const std::string unterminated("\xFF\xFF\xFF", 3);
    store::BitReader varint(unterminated);
    EXPECT_THROW(varint.getVarint(), FatalError); // unterminated

    store::BitReader bytes(buf);
    char sink[2];
    EXPECT_THROW(bytes.getBytes(sink, 2), FatalError);
}

// ---------------------------------------------------------------------
// Huffman and the compress()/decompress() block format
// ---------------------------------------------------------------------

TEST(Huffman, EncodeDecodeRoundTripsSkewedFrequencies)
{
    std::uint64_t freq[257] = {};
    freq['a'] = 1000;
    freq['b'] = 300;
    freq['c'] = 40;
    freq['z'] = 1;
    freq[256] = 1; // end-of-block
    const store::Huffman enc = store::Huffman::fromFrequencies(freq, 257);

    const std::string msg = "abacabadabacabaz"; // 'd' has no code? it does not
    store::BitWriter w;
    for (char ch : msg)
        if (ch != 'd')
            enc.encode(w, static_cast<unsigned char>(ch));
    enc.encode(w, 256);
    const std::string buf = w.finish();

    // Rebuild from the serialised lengths, exactly as a stream decoder.
    const store::Huffman dec =
        store::Huffman::fromLengths(enc.lengths(), enc.alphabet());
    store::BitReader r(buf);
    std::string back;
    for (;;) {
        const unsigned sym = dec.decode(r);
        if (sym == 256)
            break;
        back += static_cast<char>(sym);
    }
    std::string expect = msg;
    expect.erase(std::remove(expect.begin(), expect.end(), 'd'),
                 expect.end());
    EXPECT_EQ(back, expect);
}

TEST(Codec, CompressRoundTripsEveryShapeOfInput)
{
    std::vector<std::string> inputs;
    inputs.emplace_back();                       // empty
    inputs.emplace_back("x");                    // single byte
    inputs.emplace_back(std::string(100'000, 'A')); // maximally repetitive
    std::string text;
    for (int i = 0; i < 2000; ++i)
        text += "core.commit.insts " + std::to_string(i * 37) + "\n";
    inputs.push_back(text);                      // realistic stats text
    std::mt19937 rng(20260808);
    std::string random(65'536, '\0');
    for (char &c : random)
        c = static_cast<char>(rng());
    inputs.push_back(random);                    // incompressible

    for (const std::string &raw : inputs) {
        SCOPED_TRACE(raw.size());
        const std::string block = store::compress(raw);
        EXPECT_EQ(store::decompress(block), raw);
        // Stored fallback bounds expansion to a small fixed header.
        EXPECT_LE(block.size(), raw.size() + 16);
    }
    // Repetitive and structured inputs actually shrink.
    EXPECT_LT(store::compress(std::string(100'000, 'A')).size(), 1000u);
    EXPECT_LT(store::compress(text).size(), text.size() / 3);
}

TEST(Codec, DecompressBoundsHostileRawSize)
{
    const std::string block = store::compress(std::string(4096, 'q'));
    EXPECT_EQ(store::decompress(block, 4096).size(), 4096u);
    EXPECT_THROW(store::decompress(block, 4095), FatalError);
}

TEST(Codec, MutatedBlockNeverCrashes)
{
    std::string raw;
    for (int i = 0; i < 500; ++i)
        raw += "entry " + std::to_string(i) + ": ipc 1.25 cycles 4000\n";
    const std::string block = store::compress(raw);

    std::mt19937 rng(20260808);
    for (int i = 0; i < 1500; ++i) {
        const std::string m = mutate(block, rng, i);
        // The block format carries no checksum (the layers above add
        // one), so a mutation may decode to different bytes — the
        // contract here is FatalError or a clean decode, never UB.
        try {
            (void)store::decompress(m, raw.size() * 2);
        } catch (const FatalError &) {
        }
    }
}

// ---------------------------------------------------------------------
// Architectural checkpoints
// ---------------------------------------------------------------------

TEST(Checkpoint, EncodeDecodeRoundTripsFastForwardState)
{
    setQuiet(true);
    const Program prog = testProgram();
    const ArchCheckpoint ck = fastForward(prog, ckptAt);
    EXPECT_EQ(ck.insts, ckptAt);
    EXPECT_EQ(ck.programFnv, programImageFnv(prog));
    EXPECT_FALSE(ck.pages.empty());

    const std::string bytes = store::encodeCheckpoint(ck);
    const ArchCheckpoint back = store::decodeCheckpoint(bytes);
    EXPECT_TRUE(sameCheckpoint(ck, back));

    // File round trip through the atomic writer.
    const std::string dir = scratchDir("direb_store_ckpt");
    store::saveCheckpoint(dir + "/a.ckpt", ck);
    EXPECT_TRUE(sameCheckpoint(ck, store::loadCheckpoint(dir + "/a.ckpt")));
}

TEST(Checkpoint, MutatedFileNeverCrashesOrDecodesWrong)
{
    setQuiet(true);
    const std::string bytes =
        store::encodeCheckpoint(fastForward(testProgram(), ckptAt));
    const ArchCheckpoint truth = store::decodeCheckpoint(bytes);

    std::mt19937 rng(20260808);
    for (int i = 0; i < 600; ++i) {
        const std::string m = mutate(bytes, rng, i);
        // The payload is checksummed, so any decode that does NOT
        // throw must have decoded the original state (e.g. a mutation
        // that wrote back the same byte).
        try {
            const ArchCheckpoint back = store::decodeCheckpoint(m);
            EXPECT_TRUE(sameCheckpoint(truth, back)) << "iteration " << i;
        } catch (const FatalError &) {
        }
    }
    EXPECT_THROW(store::decodeCheckpoint(""), FatalError);
    EXPECT_THROW(store::decodeCheckpoint("DIRBSTOR"), FatalError);
    EXPECT_THROW(store::decodeCheckpoint(bytes + "x"), FatalError);
}

TEST(Checkpoint, RestoredRunCommitsIdenticalArchResults)
{
    setQuiet(true);
    const Program prog = testProgram();
    const Config cfg = harness::baseConfig("die-irb");

    OooCore straight(prog, cfg);
    const CoreResult sr = straight.run();
    ASSERT_EQ(sr.stop, StopReason::Halted);
    ASSERT_GT(sr.archInsts, ckptAt);

    const ArchCheckpoint ck = fastForward(prog, ckptAt);
    OooCore restored(prog, cfg);
    restored.applyArchCheckpoint(ck);
    const CoreResult rr = restored.run();
    EXPECT_EQ(rr.stop, StopReason::Halted);
    EXPECT_EQ(rr.archInsts, sr.archInsts - ckptAt);

    // Arch-visible results of the completed execution must be
    // bit-identical: program output and both register files. (arch pc
    // is not compared — the timing core tracks fetch pc in speculative
    // state and does not write it back to ArchState.)
    const ArchState &sa = straight.archState();
    const ArchState &ra = restored.archState();
    EXPECT_EQ(sa.out, ra.out);
    for (unsigned i = 0; i < numIntRegs; ++i)
        EXPECT_EQ(sa.readIntReg(i), ra.readIntReg(i)) << "r" << i;
    for (unsigned i = 0; i < numFpRegs; ++i)
        EXPECT_EQ(sa.readFpReg(i), ra.readFpReg(i)) << "f" << i;
    // Timing is allowed to differ (cold microarchitecture), but both
    // runs must have made progress.
    EXPECT_GT(rr.cycles, 0u);
}

TEST(Checkpoint, RestoreRejectsAForeignProgram)
{
    setQuiet(true);
    const ArchCheckpoint ck = fastForward(testProgram(), 1'000);
    const Program other = workloads::build("route", 1);
    OooCore core(other, harness::baseConfig("sie"));
    EXPECT_THROW(core.applyArchCheckpoint(ck), FatalError);
}

// ---------------------------------------------------------------------
// Warm-started harness runs
// ---------------------------------------------------------------------

TEST(Warmstart, WarmRunEqualsColdRunArchitecturally)
{
    setQuiet(true);
    const Program prog = testProgram();
    const std::string dir = scratchDir("direb_store_warm");

    const harness::SimResult cold =
        harness::run(prog, harness::baseConfig("die-irb"));
    ASSERT_EQ(cold.warmstartInsts, 0u);
    ASSERT_EQ(cold.core.stop, StopReason::Halted);

    const auto warm_run = [&] {
        Config cfg = harness::baseConfig("die-irb");
        cfg.set("sweep.warmstart", std::to_string(ckptAt));
        cfg.set("sweep.warmstart_dir", dir);
        return harness::run(prog, cfg);
    };
    const harness::SimResult warm = warm_run();
    EXPECT_EQ(warm.warmstartInsts, ckptAt);
    // The timing run covers only the suffix; the arch totals and the
    // program output cover the whole execution and must match exactly.
    EXPECT_EQ(warm.core.archInsts + warm.warmstartInsts,
              cold.core.archInsts);
    EXPECT_EQ(warm.output, cold.output);
    EXPECT_EQ(warm.core.stop, cold.core.stop);
    EXPECT_LT(warm.core.archInsts, cold.core.archInsts);

    // The fast-forwarded prefix was persisted under its content address.
    const std::string cache_path =
        dir + "/" +
        store::checkpointKeyHex(programImageFnv(prog), ckptAt) + ".ckpt";
    EXPECT_TRUE(fs::exists(cache_path));

    // A second warm run reuses the cached checkpoint and is
    // deterministic down to the cycle counts and statistics.
    const harness::SimResult again = warm_run();
    EXPECT_EQ(again.core.cycles, warm.core.cycles);
    EXPECT_EQ(again.stats, warm.stats);
    EXPECT_EQ(again.statsText, warm.statsText);

    // A corrupt cached checkpoint is recomputed, not trusted.
    spit(cache_path, "DIRBCKPT garbage");
    const harness::SimResult repaired = warm_run();
    EXPECT_EQ(repaired.core.cycles, warm.core.cycles);
    EXPECT_EQ(repaired.output, warm.output);
}

TEST(Warmstart, RestoreFromFileEqualsColdRun)
{
    setQuiet(true);
    const Program prog = testProgram();
    const std::string dir = scratchDir("direb_store_restore");
    const std::string path = dir + "/prefix.ckpt";
    store::saveCheckpoint(path, fastForward(prog, ckptAt));

    const harness::SimResult cold =
        harness::run(prog, harness::baseConfig("die"));
    ASSERT_EQ(cold.core.stop, StopReason::Halted);

    Config cfg = harness::baseConfig("die");
    cfg.set("ckpt.restore", path);
    const harness::SimResult warm = harness::run(prog, cfg);
    EXPECT_EQ(warm.warmstartInsts, ckptAt);
    EXPECT_EQ(warm.core.archInsts + warm.warmstartInsts,
              cold.core.archInsts);
    EXPECT_EQ(warm.output, cold.output);
}

TEST(Warmstart, InvalidRequestsAreRejectedLoudly)
{
    setQuiet(true);
    const Program prog = testProgram();
    const std::string dir = scratchDir("direb_store_warm_bad");
    const std::string path = dir + "/p.ckpt";
    store::saveCheckpoint(path, fastForward(prog, 1'000));

    { // warmstart must leave budget for the timing run
        Config cfg = harness::baseConfig("sie");
        cfg.set("sweep.warmstart", std::to_string(budget));
        EXPECT_THROW(harness::run(prog, cfg, budget), FatalError);
    }
    { // restore and warmstart are mutually exclusive
        Config cfg = harness::baseConfig("sie");
        cfg.set("ckpt.restore", path);
        cfg.set("sweep.warmstart", "500");
        EXPECT_THROW(harness::run(prog, cfg, budget), FatalError);
    }
    { // a checkpoint from a different program is rejected
        Config cfg = harness::baseConfig("sie");
        cfg.set("ckpt.restore", path);
        EXPECT_THROW(
            harness::run(workloads::build("route", 1), cfg, budget),
            FatalError);
    }
    { // CMP runs cannot warm-start
        Config cfg = harness::baseConfig("sie");
        cfg.set("cmp.cores", "2");
        cfg.set("sweep.warmstart", "500");
        EXPECT_THROW(harness::run(prog, cfg, budget), FatalError);
    }
    { // the golden cross-check must see the whole execution
        Config cfg = harness::baseConfig("sie");
        cfg.set("sweep.warmstart", "500");
        EXPECT_THROW(harness::goldenRun(prog, cfg, budget), FatalError);
    }
}

// ---------------------------------------------------------------------
// Sweep-cache entry schema (render / parse / version gate)
// ---------------------------------------------------------------------

namespace
{

/** One cached sweep over three modes; returns the results. */
std::vector<harness::SweepResult>
runCachedSweep(const std::string &dir)
{
    harness::Sweep sweep(1);
    for (const char *mode : {"sie", "die", "die-irb"}) {
        Config cfg = harness::baseConfig(mode);
        cfg.set("sweep.cache", dir);
        sweep.add(std::string("fig7/") + mode + "/compress", "compress",
                  cfg, 1, budget);
    }
    return sweep.run();
}

} // namespace

TEST(CacheEntry, RenderParseRoundTrip)
{
    setQuiet(true);
    const std::string dir = scratchDir("direb_store_entry");
    const auto cold = runCachedSweep(dir);
    ASSERT_EQ(cold.size(), 3u);

    for (const auto &r : cold) {
        SCOPED_TRACE(r.name);
        const std::string text = harness::renderSweepCacheEntry(r);
        harness::SweepResult back;
        ASSERT_TRUE(harness::parseSweepCacheEntry(text, back));
        EXPECT_EQ(back.name, r.name);
        EXPECT_EQ(back.status, r.status);
        EXPECT_EQ(back.attempts, r.attempts);
        EXPECT_EQ(back.sim.core.cycles, r.sim.core.cycles);
        EXPECT_EQ(back.sim.stats, r.sim.stats); // exact doubles
        EXPECT_EQ(back.sim.output, r.sim.output);
        EXPECT_EQ(back.sim.statsText, r.sim.statsText);
        // The round trip is byte-exact, which is what lets the store
        // re-render parsed entries identically.
        EXPECT_EQ(harness::renderSweepCacheEntry(back), text);
    }

    harness::SweepResult sink;
    EXPECT_FALSE(harness::parseSweepCacheEntry("{ not json", sink));
    EXPECT_FALSE(harness::parseSweepCacheEntry("{}", sink));
}

TEST(CacheEntry, VersionMismatchIsACacheMiss)
{
    setQuiet(true);
    const std::string dir = scratchDir("direb_store_version");
    const auto cold = runCachedSweep(dir);
    for (const auto &r : cold)
        ASSERT_FALSE(r.fromCache) << r.name;

    // Downgrade every entry's version stamp in place: the files stay
    // perfectly well-formed JSON, only the schema version disagrees.
    std::size_t patched = 0;
    for (const auto &ent : fs::directory_iterator(dir)) {
        std::string text = slurp(ent.path().string());
        const std::string from = "\"version\": 2";
        const std::size_t pos = text.find(from);
        ASSERT_NE(pos, std::string::npos) << ent.path();
        text.replace(pos, from.size(), "\"version\": 1");
        spit(ent.path().string(), text);
        ++patched;
    }
    ASSERT_EQ(patched, 3u);

    harness::SweepResult sink;
    EXPECT_FALSE(harness::parseSweepCacheEntry(
        slurp(fs::directory_iterator(dir)->path().string()), sink));

    // Stale-shaped entries re-simulate (and repair the cache)...
    const auto rerun = runCachedSweep(dir);
    for (std::size_t i = 0; i < rerun.size(); ++i) {
        EXPECT_FALSE(rerun[i].fromCache) << rerun[i].name;
        EXPECT_EQ(rerun[i].sim.core.cycles, cold[i].sim.core.cycles);
    }
    // ...after which the current-version entries hit again.
    const auto warm = runCachedSweep(dir);
    for (const auto &r : warm)
        EXPECT_TRUE(r.fromCache) << r.name;
}

// ---------------------------------------------------------------------
// The columnar artifact: pack / unpack byte identity + corruption
// ---------------------------------------------------------------------

TEST(Store, PackUnpackRestoresTheDirectoryByteIdentically)
{
    setQuiet(true);
    const std::string dir = scratchDir("direb_store_pack");
    runCachedSweep(dir);
    // Foreign files ride along verbatim in the raw section.
    spit(dir + "/notes.txt", "kept as-is\x00\x01\xFF binary too");
    spit(dir + "/broken.json", "{ \"version\": 2, truncated");
    const auto original = dirBytes(dir);
    ASSERT_EQ(original.size(), 5u);

    const store::Artifact art = store::packDirectory(dir);
    EXPECT_EQ(art.entries.size(), 3u);
    EXPECT_EQ(art.rawFiles.size(), 2u);
    EXPECT_EQ(flatten(art), original);

    // The artifact actually compresses the directory.
    std::size_t raw_total = 0;
    for (const auto &[name, bytes] : original)
        raw_total += bytes.size();
    const std::string encoded = store::encodeArtifact(art);
    EXPECT_LT(encoded.size(), raw_total);

    // File round trip + unpack into a fresh directory.
    const std::string art_path =
        scratchDir("direb_store_artifact") + "/sweep.dirbstor";
    store::writeArtifact(art_path, art);
    const store::Artifact back = store::readArtifact(art_path);
    const std::string dir2 = scratchDir("direb_store_unpack");
    store::unpackArtifact(back, dir2);
    EXPECT_EQ(dirBytes(dir2), original);
}

TEST(Store, MutatedArtifactNeverCrashesOrDecodesWrong)
{
    setQuiet(true);
    const std::string dir = scratchDir("direb_store_fuzz");
    runCachedSweep(dir);
    spit(dir + "/raw.bin", std::string("\x01\x02\x03\x00zzz", 8));
    const store::Artifact art = store::packDirectory(dir);
    const std::string bytes = store::encodeArtifact(art);
    const auto truth = flatten(art);

    std::mt19937 rng(20260808);
    for (int i = 0; i < 600; ++i) {
        const std::string m = mutate(bytes, rng, i);
        // Sections are FNV-checksummed: any decode that does not throw
        // must have decoded the original contents.
        try {
            const store::Artifact back = store::decodeArtifact(m);
            EXPECT_EQ(flatten(back), truth) << "iteration " << i;
        } catch (const FatalError &) {
        }
    }
    EXPECT_THROW(store::decodeArtifact(""), FatalError);
    EXPECT_THROW(store::decodeArtifact("DIRBCKPT"), FatalError);
    EXPECT_THROW(store::decodeArtifact(bytes + "tail"), FatalError);
    EXPECT_THROW(store::readArtifact(dir + "/does-not-exist"),
                 FatalError);
}

TEST(Store, UnpackRejectsHostileFilenames)
{
    store::Artifact art;
    art.rawFiles.push_back({"../escape", "x"});
    const std::string dir = scratchDir("direb_store_hostile");
    EXPECT_THROW(store::unpackArtifact(art, dir), FatalError);
    art.rawFiles[0].filename = "a/b";
    EXPECT_THROW(store::unpackArtifact(art, dir), FatalError);
    art.rawFiles[0].filename = "";
    EXPECT_THROW(store::unpackArtifact(art, dir), FatalError);
}

// ---------------------------------------------------------------------
// /v1/query aggregation
// ---------------------------------------------------------------------

namespace
{

/** A hand-built artifact with known values (no simulation needed). */
store::Artifact
syntheticArtifact()
{
    store::Artifact art;
    const struct
    {
        const char *name;
        harness::PointStatus status;
        double ipc;
        double misses;
    } rows[] = {
        {"fig7/lat1/ammp", harness::PointStatus::Ok, 1.0, 10.0},
        {"fig7/lat1/gcc", harness::PointStatus::Ok, 2.0, 30.0},
        {"fig7/lat2/ammp", harness::PointStatus::Ok, 4.0, 20.0},
        {"fig7/lat2/gcc", harness::PointStatus::Timeout, 8.0, 0.0},
    };
    unsigned n = 0;
    for (const auto &row : rows) {
        harness::SweepResult r;
        r.name = row.name;
        r.status = row.status;
        r.attempts = 1;
        r.sim.core.stop = StopReason::Halted;
        r.sim.core.cycles = 1000 + n;
        r.sim.core.archInsts =
            static_cast<std::uint64_t>(row.ipc * (1000 + n));
        r.sim.core.ipc = row.ipc;
        r.sim.stats["dl1.misses"] = row.misses;
        r.sim.output = "out";
        r.sim.statsText = "text";
        art.entries.push_back(
            {"entry" + std::to_string(n++) + ".json", r});
    }
    art.rawFiles.push_back({"readme.txt", "skipped by queries"});
    return art;
}

harness::Json
query(const store::Artifact &art, const std::string &body)
{
    const store::QueryRequest req =
        store::parseQuery(harness::Json::parse(body));
    return store::runQuery({&art}, req);
}

double
groupAgg(const harness::Json &resp, const std::string &key,
         const std::string &agg)
{
    const harness::Json *groups = resp.find("groups");
    EXPECT_NE(groups, nullptr);
    for (std::size_t i = 0; i < groups->size(); ++i) {
        const harness::Json &g = groups->at(i);
        if (g.find("key")->asString() == key)
            return g.find(agg)->asNumber();
    }
    ADD_FAILURE() << "no group " << key;
    return std::nan("");
}

} // namespace

TEST(Query, AggregatesMatchHandComputedValues)
{
    const store::Artifact art = syntheticArtifact();
    const harness::Json resp =
        query(art, "{\"metric\": \"ipc\", \"group_by\": \"\"}");
    EXPECT_EQ(resp.find("points")->asNumber(), 4.0);
    EXPECT_EQ(resp.find("matched")->asNumber(), 4.0);
    EXPECT_EQ(resp.find("skipped_raw_files")->asNumber(), 1.0);
    EXPECT_EQ(groupAgg(resp, "", "count"), 4.0);
    EXPECT_EQ(groupAgg(resp, "", "min"), 1.0);
    EXPECT_EQ(groupAgg(resp, "", "max"), 8.0);
    EXPECT_DOUBLE_EQ(groupAgg(resp, "", "mean"), 15.0 / 4.0);
    EXPECT_DOUBLE_EQ(groupAgg(resp, "", "sum"), 15.0);
    // geomean(1,2,4,8) = (64)^(1/4) = 2*sqrt(2)
    EXPECT_NEAR(groupAgg(resp, "", "geomean"), 2.0 * std::sqrt(2.0),
                1e-12);
}

TEST(Query, GroupByNameComponentAndFilters)
{
    const store::Artifact art = syntheticArtifact();

    // Group on the second '/'-component (the latency axis).
    const harness::Json by_lat = query(
        art, "{\"metric\": \"ipc\", \"group_by\": \"name:1\"}");
    EXPECT_DOUBLE_EQ(groupAgg(by_lat, "lat1", "mean"), 1.5);
    EXPECT_DOUBLE_EQ(groupAgg(by_lat, "lat2", "mean"), 6.0);

    // Status filter + contains filter compose.
    const harness::Json ok_gcc = query(
        art, "{\"metric\": \"ipc\", \"filter\": {\"status\": \"ok\", "
             "\"name_contains\": \"gcc\"}}");
    EXPECT_EQ(ok_gcc.find("matched")->asNumber(), 1.0);
    EXPECT_EQ(groupAgg(ok_gcc, "", "max"), 2.0);

    // Group by status; the timeout point lands in its own group.
    const harness::Json by_status =
        query(art, "{\"metric\": \"ipc\", \"group_by\": \"status\", "
                   "\"aggs\": [\"count\", \"sum\"]}");
    EXPECT_EQ(groupAgg(by_status, "ok", "count"), 3.0);
    EXPECT_EQ(groupAgg(by_status, "timeout", "sum"), 8.0);

    // stats.<key> metrics skip entries lacking the stat... here none do,
    // but a zero value must kill the geomean, not the group.
    const harness::Json misses =
        query(art, "{\"metric\": \"stats.dl1.misses\"}");
    EXPECT_EQ(groupAgg(misses, "", "min"), 0.0);
    EXPECT_TRUE(misses.find("groups")->at(0).find("geomean")->isNull());

    // An unknown stat matches nothing and counts as missing.
    const harness::Json none =
        query(art, "{\"metric\": \"stats.no.such.key\"}");
    EXPECT_EQ(none.find("matched")->asNumber(), 0.0);
    EXPECT_EQ(none.find("missing_metric")->asNumber(), 4.0);
}

TEST(Query, MalformedRequestsAreRejected)
{
    const auto parse = [](const std::string &body) {
        return store::parseQuery(harness::Json::parse(body));
    };
    EXPECT_THROW(parse("{}"), FatalError); // metric is required
    EXPECT_THROW(parse("{\"metric\": \"bogus\"}"), FatalError);
    EXPECT_THROW(parse("{\"metric\": \"ipc\", \"aggs\": [\"median\"]}"),
                 FatalError);
    EXPECT_THROW(parse("{\"metric\": \"ipc\", \"group_by\": \"mode\"}"),
                 FatalError);
    EXPECT_THROW(
        parse("{\"metric\": \"ipc\", \"filter\": {\"nope\": \"x\"}}"),
        FatalError);
    EXPECT_THROW(parse("{\"metric\": \"ipc\", \"unknown\": 1}"),
                 FatalError);
    EXPECT_NO_THROW(parse("{\"metric\": \"stats.dl1.misses\", "
                          "\"group_by\": \"name:2\"}"));
}

TEST(Query, MatchesAggregateOverTheRawCacheFiles)
{
    setQuiet(true);
    const std::string dir = scratchDir("direb_store_query_raw");
    runCachedSweep(dir);
    const store::Artifact art = store::packDirectory(dir);
    ASSERT_EQ(art.entries.size(), 3u);

    // The reference value comes straight from the JSON files on disk.
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &[name, bytes] : dirBytes(dir)) {
        const harness::Json j = harness::Json::parse(bytes);
        sum += j.find("core")->find("ipc")->asNumber();
        ++n;
    }
    ASSERT_EQ(n, 3u);

    const harness::Json resp = query(art, "{\"metric\": \"ipc\"}");
    EXPECT_EQ(resp.find("matched")->asNumber(), double(n));
    EXPECT_DOUBLE_EQ(groupAgg(resp, "", "sum"), sum);
    EXPECT_DOUBLE_EQ(groupAgg(resp, "", "mean"), sum / double(n));
}

// ---------------------------------------------------------------------
// The /v1/query server route (socket-free)
// ---------------------------------------------------------------------

namespace
{

service::HttpRequest
makeRequest(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    service::HttpRequest req;
    req.method = method;
    req.target = target;
    req.version = "HTTP/1.1";
    req.body = body;
    return req;
}

service::ServerOptions
storeServerOptions()
{
    service::ServerOptions opts;
    opts.port = 0;
    opts.workers = 1;
    opts.httpThreads = 2;
    opts.queueDepth = 2;
    return opts;
}

} // namespace

TEST(ServerQuery, RouteServesMountedStores)
{
    setQuiet(true);
    const std::string dir = scratchDir("direb_store_serve");
    runCachedSweep(dir);
    const std::string art_path = dir + "/all.dirbstor";
    store::writeArtifact(art_path, store::packDirectory(dir));

    service::ServerOptions opts = storeServerOptions();
    opts.storePaths = {art_path};
    service::Server server(opts);
    std::string rid;

    service::HttpResponse r = server.route(
        makeRequest("POST", "/v1/query", "{\"metric\": \"ipc\"}"), rid);
    ASSERT_EQ(r.status, 200);
    const harness::Json j = harness::Json::parse(r.body);
    EXPECT_EQ(j.find("matched")->asNumber(), 3.0);

    // Malformed body and method discipline.
    r = server.route(
        makeRequest("POST", "/v1/query", "{\"metric\": \"nope\"}"), rid);
    EXPECT_EQ(r.status, 400);
    r = server.route(makeRequest("GET", "/v1/query"), rid);
    EXPECT_EQ(r.status, 405);

    // healthz advertises the mounted stores; /metrics exports the
    // dieirb_store_* series including the query counter bumped above.
    r = server.route(makeRequest("GET", "/healthz"), rid);
    const harness::Json h = harness::Json::parse(r.body);
    ASSERT_NE(h.find("stores"), nullptr);
    EXPECT_EQ(h.find("stores")->asNumber(), 1.0);
    EXPECT_EQ(h.find("store_entries")->asNumber(), 3.0);

    r = server.route(makeRequest("GET", "/metrics"), rid);
    EXPECT_NE(r.body.find("dieirb_store_artifacts 1"),
              std::string::npos);
    EXPECT_NE(r.body.find("dieirb_store_entries 3"), std::string::npos);
    EXPECT_NE(r.body.find("dieirb_store_queries_total"),
              std::string::npos);
    EXPECT_NE(r.body.find("dieirb_store_checkpoint_restores_total"),
              std::string::npos);
}

TEST(ServerQuery, NoMountedStoresAnswers404AndCorruptPathIsFatal)
{
    setQuiet(true);
    service::Server bare(storeServerOptions());
    std::string rid;
    const service::HttpResponse r = bare.route(
        makeRequest("POST", "/v1/query", "{\"metric\": \"ipc\"}"), rid);
    EXPECT_EQ(r.status, 404);

    const std::string dir = scratchDir("direb_store_serve_bad");
    spit(dir + "/junk.dirbstor", "not an artifact");
    service::ServerOptions opts = storeServerOptions();
    opts.storePaths = {dir + "/junk.dirbstor"};
    EXPECT_THROW(service::Server server(opts), FatalError);
}
